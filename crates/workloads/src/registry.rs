//! Named, parameterized scenario registry.
//!
//! The sweep harness (`aq-harness`) needs to enumerate experiment
//! scenarios *by name* and instantiate them over a parameter grid — the
//! same way the paper's figures are trends over `(scenario × parameter ×
//! seed)` points rather than single runs. This module holds the
//! experiment-description vocabulary shared by the figure benches and the
//! harness:
//!
//! * [`EntitySetup`] / [`Traffic`] / [`LongKind`] — what each entity
//!   sends (moved here from `aq-bench` so scenario descriptions live with
//!   the workload layer; `aq-bench` re-exports them);
//! * [`Params`] — a named `f64` parameter assignment with a canonical,
//!   deterministic string rendering used as a stable sweep key;
//! * [`ScenarioDef`] — a named blueprint mapping resolved parameters to
//!   entity setups plus a [`RunPlan`];
//! * [`registry`] / [`find`] — the enumerable table of blueprints.
//!
//! The registry deliberately describes only the *workload* side; which
//! sharing approach (PQ/AQ/PRL/DRL) wraps it, and on what topology, is
//! the caller's axis (`aq_bench::build_dumbbell` takes an approach and an
//! `ExpConfig` alongside the entity list).

use aq_netsim::ids::EntityId;
use aq_netsim::time::{Duration, Rate};
use aq_transport::CcAlgo;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What an entity sends.
#[derive(Debug, Clone)]
pub enum Traffic {
    /// Open-loop web-search flows: `n_flows` Poisson arrivals at `load`
    /// of the bottleneck.
    WebSearch {
        /// Number of flows.
        n_flows: usize,
        /// Offered load fraction of the bottleneck capacity.
        load: f64,
    },
    /// Closed-loop web-search replay: `n_flows` dealt round-robin to the
    /// entity's VMs, each VM running its list back to back (the paper's
    /// per-VM trace-replay model for Figs. 6/7/10).
    WebSearchClosed {
        /// Total flows across the entity's VMs.
        n_flows: usize,
        /// Flow-size multiplier (bandwidth-boundedness knob).
        size_scale: f64,
    },
    /// `n` long-lived flows (TCP of the entity's CC, or UDP at `rate`).
    Long {
        /// Flow count.
        n: usize,
        /// TCP (entity CC) or UDP.
        kind: LongKind,
    },
}

/// Long-lived flow kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LongKind {
    /// TCP under the entity's CC algorithm.
    Tcp,
    /// UDP at the given rate.
    Udp(Rate),
}

/// One entity in an experiment.
#[derive(Debug, Clone)]
pub struct EntitySetup {
    /// Entity id (must be unique and nonzero).
    pub entity: EntityId,
    /// Number of sending VMs (left-side hosts) the entity owns.
    pub n_vms: usize,
    /// Congestion control used by all the entity's TCP flows.
    pub cc: CcAlgo,
    /// Network weight (weighted AQ mode; PRL/DRL derive even splits).
    pub weight: u64,
    /// What the entity sends.
    pub traffic: Traffic,
}

/// How long to drive a scenario instance.
#[derive(Debug, Clone, Copy)]
pub enum RunPlan {
    /// Run long-lived traffic for a fixed horizon and measure rates.
    FixedHorizon {
        /// Simulated run length.
        horizon: Duration,
    },
    /// Run until every entity's sized workload completes (or `deadline`),
    /// and measure completion times.
    UntilComplete {
        /// Give-up point; unfinished entities report no completion.
        deadline: Duration,
    },
}

/// Physical fabric a scenario instance runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Host-pair dumbbell with a single shared core bottleneck
    /// (`aq_bench::build_dumbbell`).
    Dumbbell,
    /// k-ary ECMP fat tree; entities sit in the first pod (one edge
    /// switch each) and send to a shared remote pod, so the contention is
    /// cross-pod and spread over the core paths.
    FatTree {
        /// Fat-tree arity (even, ≥ 2; `k = 4` is 16 hosts).
        k: usize,
    },
}

/// A fault to inject, described against the scenario's *logical* topology
/// (the bench layer translates it to concrete link/node ids when it
/// instantiates the fabric, and derives the fault RNG seed from the run
/// seed so the whole run stays deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanFault {
    /// Flap the shared bottleneck link: `flaps` down/up cycles starting at
    /// `first_down_ms`, each `down_ms` dark then `up_ms` lit.
    CoreLinkFlap {
        /// When the first down edge fires (simulated ms).
        first_down_ms: f64,
        /// Number of down/up cycles.
        flaps: u32,
        /// Dark interval per cycle (simulated ms).
        down_ms: f64,
        /// Lit interval between cycles (simulated ms).
        up_ms: f64,
    },
    /// Corrupt packets on the shared bottleneck link with the given
    /// probability over `[from_ms, until_ms)`.
    CoreLinkLoss {
        /// Window start (simulated ms).
        from_ms: f64,
        /// Window end (simulated ms).
        until_ms: f64,
        /// Corruption probability in parts per million.
        loss_ppm: u32,
    },
    /// Wipe the AQ tables of the bottleneck switch at `at_ms` (switch
    /// reboot: configs survive via controller re-deploy, dynamic state is
    /// rebuilt from subsequent arrivals).
    AqReset {
        /// Wipe instant (simulated ms).
        at_ms: f64,
    },
    /// Black out one sending host over `[from_ms, until_ms)`: its NIC
    /// drops all traffic in both directions while timers keep firing, so
    /// the transport rides RTO backoff through the outage.
    SenderBlackout {
        /// Index into the scenario's sender hosts (VM order).
        sender: usize,
        /// Blackout start (simulated ms).
        from_ms: f64,
        /// Blackout end (simulated ms).
        until_ms: f64,
    },
}

/// Which admission policy guards a scenario's per-switch shared-buffer
/// pools (the bench layer maps these onto
/// `aq_netsim::buffer::AdmissionPolicy` implementations).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionKind {
    /// Static per-port partition — today's reference behavior.
    StaticPartition,
    /// Classic dynamic threshold: admit while the port holds less than
    /// `alpha ×` the free pool space.
    DynamicThreshold {
        /// DT alpha.
        alpha: f64,
    },
    /// BShare-style delay-driven admission: mark/reject by the projected
    /// queueing delay of the arriving packet.
    DelayDriven {
        /// Projected delay at/above which admitted packets are CE-marked
        /// (µs).
        mark_us: u64,
        /// Projected delay above which packets are rejected (µs).
        max_us: u64,
    },
}

impl AdmissionKind {
    /// Stable report label, matching the netsim policy names.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionKind::StaticPartition => "static",
            AdmissionKind::DynamicThreshold { .. } => "dt",
            AdmissionKind::DelayDriven { .. } => "delay",
        }
    }
}

/// Which queue discipline a scenario runs on switch egress ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AqmKind {
    /// Taildrop FIFO with optional ECN threshold — the default fabric.
    Fifo,
    /// iRED-style disaggregated RED (split decide/act stages).
    DisaggRed,
    /// L4S-style step/ramp marking.
    L4sStep,
}

impl AqmKind {
    /// Stable report label.
    pub fn label(&self) -> &'static str {
        match self {
            AqmKind::Fifo => "fifo",
            AqmKind::DisaggRed => "disagg_red",
            AqmKind::L4sStep => "l4s_step",
        }
    }
}

/// The shared-buffer layer a scenario instantiates on every switch: one
/// pool per switch, guarded by an admission policy, with a chosen AQM on
/// the switch egress ports. `None` on a [`ScenarioPlan`] keeps the
/// classic per-port-FIFO fabric with no pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferPlan {
    /// Pool capacity per switch (bytes, shared by all its ports).
    pub pool_bytes: u64,
    /// Admission policy consulted on every switch enqueue.
    pub admission: AdmissionKind,
    /// Queue discipline on switch egress ports.
    pub aqm: AqmKind,
}

/// Overflow policy for a scenario's bounded AQ tables (mirrors
/// `aq_core::OverflowPolicy`; the bench layer maps it across so the
/// workload crate stays free of the core dependency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowKind {
    /// Refuse deploys at budget; the refused flow degrades to
    /// physical-queue behavior.
    RejectNew,
    /// Evict the longest-idle AQ to admit new demand.
    EvictIdle,
}

impl OverflowKind {
    /// Stable report label, matching `OverflowPolicy::label`.
    pub fn label(&self) -> &'static str {
        match self {
            OverflowKind::RejectNew => "reject_new",
            OverflowKind::EvictIdle => "evict_idle",
        }
    }
}

/// A register-memory budget on every AQ-bearing switch table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanAqBudget {
    /// Budget expressed in AQ rows (15 packed bytes each).
    pub aqs: usize,
    /// What a deploy at budget does.
    pub policy: OverflowKind,
}

/// A control-plane tenant-churn train against the bottleneck switch: a
/// create every `cadence_us`, cycling ids through
/// `[base_id, base_id + id_span)`, destroying the oldest tenant once
/// `target_live` are up — so live control-plane demand holds at
/// `target_live`/`target_live + 1` for the rest of the run (the bench
/// layer translates this to an `aq_netsim::churn::ChurnPlan`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanChurn {
    /// First create instant (simulated ms).
    pub first_ms: f64,
    /// Tick cadence (simulated µs).
    pub cadence_us: f64,
    /// Number of create ticks.
    pub ticks: usize,
    /// First tenant AQ id (chosen above the entity-grant id range).
    pub base_id: u32,
    /// Ids cycle modulo this span.
    pub id_span: u32,
    /// Steady-state live tenant count.
    pub target_live: usize,
}

/// A fully-resolved scenario instance: the entities plus the run plan.
#[derive(Debug, Clone)]
pub struct ScenarioPlan {
    /// Entity descriptions, in entity-id order.
    pub entities: Vec<EntitySetup>,
    /// How long to run.
    pub run: RunPlan,
    /// Fabric to instantiate.
    pub topology: Topology,
    /// Faults to inject (empty for fault-free scenarios).
    pub faults: Vec<PlanFault>,
    /// Shared-buffer/AQM layer (`None` = classic per-port FIFOs).
    pub buffers: Option<BufferPlan>,
    /// Tenant create/destroy churn train (`None` = static control plane).
    pub churn: Option<PlanChurn>,
    /// AQ-table register budget (`None` = unbounded tables).
    pub aq_budget: Option<PlanAqBudget>,
}

/// One named parameter with its default value.
#[derive(Debug, Clone, Copy)]
pub struct ParamDef {
    /// Parameter name as used in grids and canonical keys.
    pub name: &'static str,
    /// Value used when a sweep does not override the parameter.
    pub default: f64,
    /// One-line description.
    pub help: &'static str,
}

/// A named `f64` parameter assignment.
///
/// Keys iterate in `BTreeMap` order, so [`canonical`] renders the same
/// string for the same assignment regardless of insertion order — the
/// property the sweep harness relies on for stable run keys and
/// byte-identical merged output.
///
/// [`canonical`]: Params::canonical
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params(BTreeMap<String, f64>);

impl Params {
    /// An empty assignment.
    pub fn new() -> Params {
        Params(BTreeMap::new())
    }

    /// Set one parameter (overwrites).
    pub fn set(&mut self, name: &str, value: f64) {
        self.0.insert(name.to_string(), value);
    }

    /// Look up one parameter.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.0.get(name).copied()
    }

    /// Look up one parameter and round it to a count.
    pub fn get_usize(&self, name: &str) -> Option<usize> {
        self.get(name).map(|v| v.max(0.0).round() as usize)
    }

    /// Iterate `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.0.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Canonical `name=value` rendering, comma-separated, name-sorted.
    /// Integral values print without a fraction (`vms=4`), others with
    /// fixed precision (`load=0.8000`), so the string is deterministic.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}={}", fmt_param(*v));
        }
        out
    }

    /// Parse a `name=value[,name=value...]` assignment (the inverse of
    /// [`canonical`](Params::canonical); an empty string is an empty
    /// assignment).
    pub fn parse(text: &str) -> Result<Params, String> {
        let mut p = Params::new();
        for part in text.split(',').filter(|s| !s.trim().is_empty()) {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("bad parameter `{part}` (expected name=value)"))?;
            let value: f64 = v
                .trim()
                .parse()
                .map_err(|_| format!("bad value in `{part}`"))?;
            if !value.is_finite() {
                return Err(format!("non-finite value in `{part}`"));
            }
            p.set(k.trim(), value);
        }
        Ok(p)
    }
}

/// Deterministic parameter-value formatting: integers bare, fractions at
/// fixed precision.
fn fmt_param(v: f64) -> String {
    let t = v.trunc();
    if (v - t).abs() < 1e-9 {
        format!("{}", t as i64)
    } else {
        format!("{v:.4}")
    }
}

/// A named scenario blueprint.
pub struct ScenarioDef {
    /// Registry name (also the sweep key prefix).
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Parameters the blueprint understands, with defaults.
    pub params: &'static [ParamDef],
    /// Build the plan from a *resolved* parameter set (all params
    /// present). Use [`ScenarioDef::resolve`] first.
    pub build: fn(&Params) -> ScenarioPlan,
}

impl ScenarioDef {
    /// Merge `overrides` over the blueprint defaults. Unknown parameter
    /// names are an error, so grid typos cannot silently no-op.
    pub fn resolve(&self, overrides: &Params) -> Result<Params, String> {
        for (name, _) in overrides.iter() {
            if !self.params.iter().any(|p| p.name == name) {
                return Err(format!(
                    "scenario `{}` has no parameter `{name}` (has: {})",
                    self.name,
                    self.params
                        .iter()
                        .map(|p| p.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        let mut resolved = Params::new();
        for p in self.params {
            resolved.set(p.name, overrides.get(p.name).unwrap_or(p.default));
        }
        Ok(resolved)
    }

    /// Resolve and build in one step.
    pub fn plan(&self, overrides: &Params) -> Result<ScenarioPlan, String> {
        Ok((self.build)(&self.resolve(overrides)?))
    }
}

impl std::fmt::Debug for ScenarioDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioDef")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .finish_non_exhaustive()
    }
}

fn ms(v: f64) -> Duration {
    Duration::from_micros((v.max(0.0) * 1000.0) as u64)
}

fn fairness_flows(p: &Params) -> ScenarioPlan {
    let b_flows = p.get_usize("b_flows").unwrap_or(4).max(1);
    ScenarioPlan {
        entities: vec![
            EntitySetup {
                entity: EntityId(1),
                n_vms: 1,
                cc: CcAlgo::Cubic,
                weight: 1,
                traffic: Traffic::Long {
                    n: 1,
                    kind: LongKind::Tcp,
                },
            },
            EntitySetup {
                entity: EntityId(2),
                n_vms: 1,
                cc: CcAlgo::Cubic,
                weight: 1,
                traffic: Traffic::Long {
                    n: b_flows,
                    kind: LongKind::Tcp,
                },
            },
        ],
        run: RunPlan::FixedHorizon {
            horizon: ms(p.get("horizon_ms").unwrap_or(40.0)),
        },
        topology: Topology::Dumbbell,
        faults: vec![],
        buffers: None,
        churn: None,
        aq_budget: None,
    }
}

fn completion_vms(p: &Params) -> ScenarioPlan {
    let vms = p.get_usize("vms").unwrap_or(2).max(1);
    let n_flows = p.get_usize("n_flows").unwrap_or(8).max(1);
    let size_scale = p.get("size_scale").unwrap_or(2.0);
    let mk = |entity| EntitySetup {
        entity,
        n_vms: vms,
        cc: CcAlgo::Cubic,
        weight: 1,
        traffic: Traffic::WebSearchClosed {
            n_flows,
            size_scale,
        },
    };
    ScenarioPlan {
        entities: vec![mk(EntityId(1)), mk(EntityId(2))],
        run: RunPlan::UntilComplete {
            deadline: ms(p.get("deadline_ms").unwrap_or(5_000.0)),
        },
        topology: Topology::Dumbbell,
        faults: vec![],
        buffers: None,
        churn: None,
        aq_budget: None,
    }
}

fn udp_tcp_share(p: &Params) -> ScenarioPlan {
    let tcp_flows = p.get_usize("tcp_flows").unwrap_or(4).max(1);
    let udp_gbps = p.get_usize("udp_gbps").unwrap_or(10).max(1);
    ScenarioPlan {
        entities: vec![
            EntitySetup {
                entity: EntityId(1),
                n_vms: 1,
                cc: CcAlgo::Cubic,
                weight: 1,
                traffic: Traffic::Long {
                    n: 1,
                    kind: LongKind::Udp(Rate::from_gbps(udp_gbps as u64)),
                },
            },
            EntitySetup {
                entity: EntityId(2),
                n_vms: 1,
                cc: CcAlgo::Cubic,
                weight: 1,
                traffic: Traffic::Long {
                    n: tcp_flows,
                    kind: LongKind::Tcp,
                },
            },
        ],
        run: RunPlan::FixedHorizon {
            horizon: ms(p.get("horizon_ms").unwrap_or(40.0)),
        },
        topology: Topology::Dumbbell,
        faults: vec![],
        buffers: None,
        churn: None,
        aq_budget: None,
    }
}

/// The Swift target queuing delay used whenever a mixed-CC scenario puts
/// a Swift entity on the fabric (the paper's Fig. 10 configuration).
const SWIFT_TARGET_US: u64 = 50;

fn cc_mix(p: &Params) -> ScenarioPlan {
    let n_flows = p.get_usize("n_flows").unwrap_or(8).max(1);
    let size_scale = p.get("size_scale").unwrap_or(2.0);
    let swift = CcAlgo::Swift {
        target: Duration::from_micros(SWIFT_TARGET_US),
    };
    // `pair` selects which CC algorithms compete (Fig. 10's axes):
    // 0 = CUBIC vs DCTCP, 1 = DCTCP vs Swift, 2 = CUBIC vs Swift.
    let (cc_a, cc_b) = match p.get_usize("pair").unwrap_or(0) {
        0 => (CcAlgo::Cubic, CcAlgo::Dctcp),
        1 => (CcAlgo::Dctcp, swift),
        _ => (CcAlgo::Cubic, swift),
    };
    let mk = |entity, cc| EntitySetup {
        entity,
        n_vms: 1,
        cc,
        weight: 1,
        traffic: Traffic::WebSearchClosed {
            n_flows,
            size_scale,
        },
    };
    ScenarioPlan {
        entities: vec![mk(EntityId(1), cc_a), mk(EntityId(2), cc_b)],
        run: RunPlan::UntilComplete {
            deadline: ms(p.get("deadline_ms").unwrap_or(5_000.0)),
        },
        topology: Topology::Dumbbell,
        faults: vec![],
        buffers: None,
        churn: None,
        aq_budget: None,
    }
}

fn interpod_fattree(p: &Params) -> ScenarioPlan {
    let a_flows = p.get_usize("a_flows").unwrap_or(1).max(1);
    let b_flows = p.get_usize("b_flows").unwrap_or(4).max(1);
    let mk = |entity, n| EntitySetup {
        entity,
        n_vms: 2,
        cc: CcAlgo::Cubic,
        weight: 1,
        traffic: Traffic::Long {
            n,
            kind: LongKind::Tcp,
        },
    };
    ScenarioPlan {
        entities: vec![mk(EntityId(1), a_flows), mk(EntityId(2), b_flows)],
        run: RunPlan::FixedHorizon {
            horizon: ms(p.get("horizon_ms").unwrap_or(40.0)),
        },
        topology: Topology::FatTree { k: 4 },
        faults: vec![],
        buffers: None,
        churn: None,
        aq_budget: None,
    }
}

fn linkflap_dumbbell(p: &Params) -> ScenarioPlan {
    let n_flows = p.get_usize("n_flows").unwrap_or(4).max(1);
    let flap_at = p.get("flap_at_ms").unwrap_or(10.0).max(0.0);
    let flaps = p.get_usize("flaps").unwrap_or(2).max(1) as u32;
    let down_ms = p.get("down_ms").unwrap_or(2.0).max(0.0);
    let up_ms = p.get("up_ms").unwrap_or(3.0).max(0.0);
    let loss_pct = p.get("loss_pct").unwrap_or(0.0).clamp(0.0, 100.0);
    let blackout_ms = p.get("blackout_ms").unwrap_or(0.0).max(0.0);
    let mk = |entity| EntitySetup {
        entity,
        n_vms: 1,
        cc: CcAlgo::Cubic,
        weight: 1,
        traffic: Traffic::Long {
            n: n_flows,
            kind: LongKind::Tcp,
        },
    };
    let mut faults = vec![PlanFault::CoreLinkFlap {
        first_down_ms: flap_at,
        flaps,
        down_ms,
        up_ms,
    }];
    if loss_pct > 0.0 {
        // The corruption window opens once the flap train ends, so the
        // recovering senders also ride a lossy core (1% = 10_000 ppm).
        let train_end = flap_at + flaps as f64 * (down_ms + up_ms);
        let horizon_ms = p.get("horizon_ms").unwrap_or(40.0);
        faults.push(PlanFault::CoreLinkLoss {
            from_ms: train_end,
            until_ms: horizon_ms,
            loss_ppm: (loss_pct * 10_000.0).round() as u32,
        });
    }
    if blackout_ms > 0.0 {
        // Entity 1's (only) sender goes dark alongside the first flap,
        // exercising multi-RTO backoff and recovery.
        faults.push(PlanFault::SenderBlackout {
            sender: 0,
            from_ms: flap_at,
            until_ms: flap_at + blackout_ms,
        });
    }
    ScenarioPlan {
        entities: vec![mk(EntityId(1)), mk(EntityId(2))],
        run: RunPlan::FixedHorizon {
            horizon: ms(p.get("horizon_ms").unwrap_or(40.0)),
        },
        topology: Topology::Dumbbell,
        faults,
        buffers: None,
        churn: None,
        aq_budget: None,
    }
}

fn aq_state_loss(p: &Params) -> ScenarioPlan {
    let n_flows = p.get_usize("n_flows").unwrap_or(4).max(1);
    let wipe_at = p.get("wipe_at_ms").unwrap_or(10.0).max(0.0);
    let mk = |entity| EntitySetup {
        entity,
        n_vms: 1,
        cc: CcAlgo::Cubic,
        weight: 1,
        traffic: Traffic::Long {
            n: n_flows,
            kind: LongKind::Tcp,
        },
    };
    ScenarioPlan {
        entities: vec![mk(EntityId(1)), mk(EntityId(2))],
        run: RunPlan::FixedHorizon {
            horizon: ms(p.get("horizon_ms").unwrap_or(40.0)),
        },
        topology: Topology::Dumbbell,
        faults: vec![PlanFault::AqReset { at_ms: wipe_at }],
        buffers: None,
        churn: None,
        aq_budget: None,
    }
}

fn tenant_churn(p: &Params) -> ScenarioPlan {
    let n_flows = p.get_usize("n_flows").unwrap_or(8).max(1);
    let load = p.get("load").unwrap_or(0.25).clamp(0.01, 1.0);
    let budget_aqs = p.get_usize("budget_aqs").unwrap_or(7).max(1);
    let policy = match p.get_usize("policy").unwrap_or(0) {
        0 => OverflowKind::RejectNew,
        _ => OverflowKind::EvictIdle,
    };
    let target = p.get_usize("churn_aqs").unwrap_or(4).max(1);
    let cadence_us = p.get("churn_cadence_us").unwrap_or(50.0).max(1.0);
    let first_ms = p.get("churn_start_ms").unwrap_or(5.0).max(0.0);
    let horizon_ms = p.get("horizon_ms").unwrap_or(40.0);
    let wipe_at = p.get("wipe_at_ms").unwrap_or(20.0).max(0.0);
    // Create ticks run from the first tick to the horizon at the cadence,
    // so the steady-state pressure lasts the remainder of the run.
    let ticks = (((horizon_ms - first_ms).max(0.0) * 1000.0) / cadence_us).floor() as usize;
    let mk = |entity| EntitySetup {
        entity,
        n_vms: 1,
        cc: CcAlgo::Cubic,
        weight: 1,
        traffic: Traffic::WebSearch { n_flows, load },
    };
    ScenarioPlan {
        entities: vec![mk(EntityId(1)), mk(EntityId(2)), mk(EntityId(3))],
        run: RunPlan::FixedHorizon {
            horizon: ms(horizon_ms),
        },
        topology: Topology::Dumbbell,
        faults: if wipe_at > 0.0 {
            vec![PlanFault::AqReset { at_ms: wipe_at }]
        } else {
            vec![]
        },
        buffers: None,
        churn: Some(PlanChurn {
            first_ms,
            cadence_us,
            ticks,
            // Tenant ids sit above the controller's entity-grant range so
            // churn never collides with the three granted AQs.
            base_id: 100,
            id_span: (target + 2) as u32,
            target_live: target,
        }),
        aq_budget: Some(PlanAqBudget {
            aqs: budget_aqs,
            policy,
        }),
    }
}

/// Map the `admission` parameter (0 static, 1 DT, 2 delay-driven) plus
/// the DT alpha onto an [`AdmissionKind`]. The delay thresholds are fixed
/// at 50 µs (mark) / 200 µs (reject) — at 10 Gbit/s those project to
/// ~62 KB and ~250 KB of port backlog respectively.
fn admission_kind(p: &Params) -> AdmissionKind {
    match p.get_usize("admission").unwrap_or(0) {
        0 => AdmissionKind::StaticPartition,
        1 => AdmissionKind::DynamicThreshold {
            alpha: p.get("dt_alpha").unwrap_or(1.0).clamp(0.001, 64.0),
        },
        _ => AdmissionKind::DelayDriven {
            mark_us: 50,
            max_us: 200,
        },
    }
}

fn pool_bytes(p: &Params) -> u64 {
    (p.get("pool_kb").unwrap_or(150.0).max(1.0) * 1000.0).round() as u64
}

fn incast_sharedbuf(p: &Params) -> ScenarioPlan {
    let senders = p.get_usize("senders").unwrap_or(4).max(1);
    let flows = p.get_usize("flows").unwrap_or(8).max(1);
    let mk = |entity| EntitySetup {
        entity,
        n_vms: senders,
        cc: CcAlgo::Cubic,
        weight: 1,
        traffic: Traffic::Long {
            n: flows,
            kind: LongKind::Tcp,
        },
    };
    ScenarioPlan {
        entities: vec![mk(EntityId(1)), mk(EntityId(2))],
        run: RunPlan::FixedHorizon {
            horizon: ms(p.get("horizon_ms").unwrap_or(40.0)),
        },
        topology: Topology::Dumbbell,
        faults: vec![],
        buffers: Some(BufferPlan {
            pool_bytes: pool_bytes(p),
            admission: admission_kind(p),
            aqm: AqmKind::Fifo,
        }),
        churn: None,
        aq_budget: None,
    }
}

fn websearch_aqm_zoo(p: &Params) -> ScenarioPlan {
    let n_flows = p.get_usize("n_flows").unwrap_or(20).max(1);
    let load = p.get("load").unwrap_or(0.8).clamp(0.05, 2.0);
    let aqm = match p.get_usize("aqm").unwrap_or(0) {
        0 => AqmKind::Fifo,
        1 => AqmKind::DisaggRed,
        _ => AqmKind::L4sStep,
    };
    let mk = |entity| EntitySetup {
        entity,
        n_vms: 2,
        cc: CcAlgo::Dctcp,
        weight: 1,
        traffic: Traffic::WebSearch { n_flows, load },
    };
    ScenarioPlan {
        entities: vec![mk(EntityId(1)), mk(EntityId(2))],
        run: RunPlan::FixedHorizon {
            horizon: ms(p.get("horizon_ms").unwrap_or(40.0)),
        },
        topology: Topology::Dumbbell,
        faults: vec![],
        buffers: Some(BufferPlan {
            pool_bytes: pool_bytes(p),
            admission: AdmissionKind::DynamicThreshold { alpha: 1.0 },
            aqm,
        }),
        churn: None,
        aq_budget: None,
    }
}

/// All registered scenarios, in name order.
pub fn registry() -> &'static [ScenarioDef] {
    const REGISTRY: &[ScenarioDef] = &[
        ScenarioDef {
            name: "aq_state_loss",
            summary: "two equal TCP entities share the dumbbell core; the bottleneck \
                      switch's AQ tables are wiped mid-run (simulated reboot) and \
                      per-entity state is rebuilt from subsequent arrivals; measures \
                      re-convergence time and post-wipe fairness",
            params: &[
                ParamDef {
                    name: "n_flows",
                    default: 4.0,
                    help: "long flows per entity",
                },
                ParamDef {
                    name: "wipe_at_ms",
                    default: 10.0,
                    help: "AQ table wipe instant (simulated ms)",
                },
                ParamDef {
                    name: "horizon_ms",
                    default: 40.0,
                    help: "run length (simulated ms)",
                },
            ],
            build: aq_state_loss,
        },
        ScenarioDef {
            name: "cc_mix",
            summary: "two entities with different CC algorithms (pair 0: CUBIC vs DCTCP, \
                      1: DCTCP vs Swift, 2: CUBIC vs Swift) replay the closed web-search \
                      trace; completion-time fairness across CC mixes (Fig. 10 shape)",
            params: &[
                ParamDef {
                    name: "pair",
                    default: 0.0,
                    help: "CC pairing: 0 CUBIC+DCTCP, 1 DCTCP+Swift, 2 CUBIC+Swift",
                },
                ParamDef {
                    name: "n_flows",
                    default: 8.0,
                    help: "flows per entity",
                },
                ParamDef {
                    name: "size_scale",
                    default: 2.0,
                    help: "flow-size multiplier",
                },
                ParamDef {
                    name: "deadline_ms",
                    default: 5000.0,
                    help: "completion deadline (simulated ms)",
                },
            ],
            build: cc_mix,
        },
        ScenarioDef {
            name: "completion_vms",
            summary: "two equal entities replay the closed web-search trace over `vms` \
                      VMs each; completion time vs VM count (Fig. 6 shape)",
            params: &[
                ParamDef {
                    name: "vms",
                    default: 2.0,
                    help: "sending VMs per entity",
                },
                ParamDef {
                    name: "n_flows",
                    default: 8.0,
                    help: "flows per entity across its VMs",
                },
                ParamDef {
                    name: "size_scale",
                    default: 2.0,
                    help: "flow-size multiplier",
                },
                ParamDef {
                    name: "deadline_ms",
                    default: 5000.0,
                    help: "completion deadline (simulated ms)",
                },
            ],
            build: completion_vms,
        },
        ScenarioDef {
            name: "fairness_flows",
            summary: "1 long flow vs `b_flows` long flows; per-entity goodput vs flow \
                      count (Fig. 8 shape)",
            params: &[
                ParamDef {
                    name: "b_flows",
                    default: 4.0,
                    help: "entity B's long-flow count",
                },
                ParamDef {
                    name: "horizon_ms",
                    default: 40.0,
                    help: "run length (simulated ms)",
                },
            ],
            build: fairness_flows,
        },
        ScenarioDef {
            name: "incast_sharedbuf",
            summary: "2×`senders` TCP entities converge on the dumbbell core through a \
                      small per-switch shared buffer pool; the `admission` axis contrasts \
                      static partitioning, dynamic threshold (DT), and delay-driven \
                      (BShare-style) admission by where drops land and how high the pool \
                      fills",
            params: &[
                ParamDef {
                    name: "admission",
                    default: 0.0,
                    help: "admission policy: 0 static partition, 1 dynamic threshold, \
                           2 delay-driven",
                },
                ParamDef {
                    name: "dt_alpha",
                    default: 1.0,
                    help: "DT alpha (admission=1 only)",
                },
                ParamDef {
                    name: "pool_kb",
                    default: 150.0,
                    help: "shared pool capacity per switch (KB)",
                },
                ParamDef {
                    name: "senders",
                    default: 4.0,
                    help: "sending VMs per entity",
                },
                ParamDef {
                    name: "flows",
                    default: 8.0,
                    help: "long flows per entity",
                },
                ParamDef {
                    name: "horizon_ms",
                    default: 40.0,
                    help: "run length (simulated ms)",
                },
            ],
            build: incast_sharedbuf,
        },
        ScenarioDef {
            name: "interpod_fattree",
            summary: "k=4 fat tree; two 2-VM entities in pod 0 (one ToR each, `a_flows` \
                      vs `b_flows` long flows) send cross-pod to shared receivers in the \
                      last pod; per-entity goodput under ECMP core contention",
            params: &[
                ParamDef {
                    name: "a_flows",
                    default: 1.0,
                    help: "entity A's long-flow count",
                },
                ParamDef {
                    name: "b_flows",
                    default: 4.0,
                    help: "entity B's long-flow count",
                },
                ParamDef {
                    name: "horizon_ms",
                    default: 40.0,
                    help: "run length (simulated ms)",
                },
            ],
            build: interpod_fattree,
        },
        ScenarioDef {
            name: "linkflap_dumbbell",
            summary: "two equal TCP entities on the dumbbell; the shared core link \
                      flaps down/up mid-run (optionally followed by a stochastic \
                      corruption window and a sender blackout); measures drop \
                      attribution and post-recovery goodput vs the pre-fault level",
            params: &[
                ParamDef {
                    name: "n_flows",
                    default: 4.0,
                    help: "long flows per entity",
                },
                ParamDef {
                    name: "flap_at_ms",
                    default: 10.0,
                    help: "first down edge (simulated ms)",
                },
                ParamDef {
                    name: "flaps",
                    default: 2.0,
                    help: "down/up cycles",
                },
                ParamDef {
                    name: "down_ms",
                    default: 2.0,
                    help: "dark interval per cycle (simulated ms)",
                },
                ParamDef {
                    name: "up_ms",
                    default: 3.0,
                    help: "lit interval between cycles (simulated ms)",
                },
                ParamDef {
                    name: "loss_pct",
                    default: 0.0,
                    help: "post-flap core corruption probability (percent; 0 = off)",
                },
                ParamDef {
                    name: "blackout_ms",
                    default: 0.0,
                    help: "entity 1 sender blackout length from the first flap (0 = off)",
                },
                ParamDef {
                    name: "horizon_ms",
                    default: 40.0,
                    help: "run length (simulated ms)",
                },
            ],
            build: linkflap_dumbbell,
        },
        ScenarioDef {
            name: "tenant_churn",
            summary: "three equal web-search entities share the dumbbell while a \
                      control-plane churn train creates/destroys tenant AQs against a \
                      bounded table held at ~90–110% of its register budget (the \
                      `policy` axis contrasts reject-new degradation with idle \
                      eviction), with a mid-run AQ-table wipe; measures post-churn \
                      fairness, reconvergence, and degraded-flow completion",
            params: &[
                ParamDef {
                    name: "budget_aqs",
                    default: 7.0,
                    help: "AQ-table register budget, in 15-byte AQ rows",
                },
                ParamDef {
                    name: "policy",
                    default: 0.0,
                    help: "overflow policy: 0 reject-new (degrade), 1 evict-idle",
                },
                ParamDef {
                    name: "churn_aqs",
                    default: 4.0,
                    help: "steady-state live churned-tenant count",
                },
                ParamDef {
                    name: "churn_cadence_us",
                    default: 50.0,
                    help: "tenant create cadence (simulated µs)",
                },
                ParamDef {
                    name: "churn_start_ms",
                    default: 5.0,
                    help: "first tenant create (simulated ms)",
                },
                ParamDef {
                    name: "n_flows",
                    default: 8.0,
                    help: "web-search flows per entity",
                },
                ParamDef {
                    name: "load",
                    default: 0.25,
                    help: "offered load fraction per entity",
                },
                ParamDef {
                    name: "wipe_at_ms",
                    default: 20.0,
                    help: "AQ table wipe instant (simulated ms; 0 = off)",
                },
                ParamDef {
                    name: "horizon_ms",
                    default: 40.0,
                    help: "run length (simulated ms)",
                },
            ],
            build: tenant_churn,
        },
        ScenarioDef {
            name: "udp_tcp_share",
            summary: "one unreactive UDP entity vs one TCP entity; who holds the link \
                      (Fig. 9 shape)",
            params: &[
                ParamDef {
                    name: "tcp_flows",
                    default: 4.0,
                    help: "TCP entity's flow count",
                },
                ParamDef {
                    name: "udp_gbps",
                    default: 10.0,
                    help: "UDP send rate (Gbit/s, whole)",
                },
                ParamDef {
                    name: "horizon_ms",
                    default: 40.0,
                    help: "run length (simulated ms)",
                },
            ],
            build: udp_tcp_share,
        },
        ScenarioDef {
            name: "websearch_aqm_zoo",
            summary: "two DCTCP entities drive open-loop web-search arrivals through a \
                      DT-guarded shared buffer; the `aqm` axis swaps the switch egress \
                      discipline (FIFO+ECN, iRED-style disaggregated RED, L4S step \
                      marking) to contrast physical AQM signals against AQ's virtual \
                      ECN (the Aq approach)",
            params: &[
                ParamDef {
                    name: "aqm",
                    default: 0.0,
                    help: "egress discipline: 0 FIFO, 1 disaggregated RED, 2 L4S step",
                },
                ParamDef {
                    name: "load",
                    default: 0.8,
                    help: "offered load fraction of the bottleneck",
                },
                ParamDef {
                    name: "n_flows",
                    default: 20.0,
                    help: "web-search flows per entity",
                },
                ParamDef {
                    name: "pool_kb",
                    default: 150.0,
                    help: "shared pool capacity per switch (KB)",
                },
                ParamDef {
                    name: "horizon_ms",
                    default: 40.0,
                    help: "run length (simulated ms)",
                },
            ],
            build: websearch_aqm_zoo,
        },
    ];
    REGISTRY
}

/// Look up a scenario by name.
pub fn find(name: &str) -> Option<&'static ScenarioDef> {
    registry().iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_name_sorted_and_findable() {
        let names: Vec<_> = registry().iter().map(|s| s.name).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "registry must stay name-sorted");
        for n in names {
            assert!(find(n).is_some());
        }
        assert!(find("no_such_scenario").is_none());
    }

    #[test]
    fn params_canonical_is_order_independent_and_parses_back() {
        let mut a = Params::new();
        a.set("vms", 4.0);
        a.set("load", 0.8);
        let mut b = Params::new();
        b.set("load", 0.8);
        b.set("vms", 4.0);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), "load=0.8000,vms=4");
        let parsed = Params::parse(&a.canonical()).expect("round-trip");
        assert_eq!(parsed.canonical(), a.canonical());
        assert!(Params::parse("vms").is_err());
        assert!(Params::parse("vms=notanumber").is_err());
    }

    #[test]
    fn resolve_applies_defaults_and_rejects_unknown_params() {
        let def = find("fairness_flows").expect("registered");
        let resolved = def.resolve(&Params::parse("b_flows=16").expect("parse"));
        let resolved = resolved.expect("resolves");
        assert_eq!(resolved.get("b_flows"), Some(16.0));
        assert_eq!(resolved.get("horizon_ms"), Some(40.0));
        assert!(def
            .resolve(&Params::parse("bflows=16").expect("parse"))
            .is_err());
    }

    #[test]
    fn every_scenario_builds_with_defaults() {
        for def in registry() {
            let plan = def.plan(&Params::new()).expect("default plan");
            assert!(!plan.entities.is_empty(), "{}: no entities", def.name);
            let mut ids: Vec<u32> = plan.entities.iter().map(|e| e.entity.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(
                ids.len(),
                plan.entities.len(),
                "{}: duplicate entity ids",
                def.name
            );
        }
    }

    #[test]
    fn cc_mix_pairs_select_distinct_cc_algorithms() {
        let def = find("cc_mix").expect("registered");
        let expect = |pair: &str, a: CcAlgo, b: CcAlgo| {
            let plan = def
                .plan(&Params::parse(pair).expect("parse"))
                .expect("plan");
            assert_eq!(plan.entities[0].cc, a, "{pair}: entity 1");
            assert_eq!(plan.entities[1].cc, b, "{pair}: entity 2");
            assert!(matches!(plan.run, RunPlan::UntilComplete { .. }));
            assert_eq!(plan.topology, Topology::Dumbbell);
        };
        let swift = CcAlgo::Swift {
            target: Duration::from_micros(50),
        };
        expect("pair=0", CcAlgo::Cubic, CcAlgo::Dctcp);
        expect("pair=1", CcAlgo::Dctcp, swift);
        expect("pair=2", CcAlgo::Cubic, swift);
    }

    #[test]
    fn interpod_fattree_runs_on_a_fat_tree() {
        let def = find("interpod_fattree").expect("registered");
        let plan = def
            .plan(&Params::parse("a_flows=2,b_flows=6").expect("parse"))
            .expect("plan");
        assert_eq!(plan.topology, Topology::FatTree { k: 4 });
        assert_eq!(plan.entities.len(), 2);
        for e in &plan.entities {
            assert_eq!(e.n_vms, 2);
        }
        match (&plan.entities[0].traffic, &plan.entities[1].traffic) {
            (Traffic::Long { n: a, .. }, Traffic::Long { n: b, .. }) => {
                assert_eq!((*a, *b), (2, 6));
            }
            other => panic!("unexpected traffic {other:?}"),
        }
    }

    #[test]
    fn linkflap_dumbbell_builds_the_full_fault_set() {
        let def = find("linkflap_dumbbell").expect("registered");
        let plan = def
            .plan(&Params::parse("flaps=3,loss_pct=1,blackout_ms=4").expect("parse"))
            .expect("plan");
        assert_eq!(plan.topology, Topology::Dumbbell);
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(
            plan.faults[0],
            PlanFault::CoreLinkFlap {
                first_down_ms: 10.0,
                flaps: 3,
                down_ms: 2.0,
                up_ms: 3.0,
            }
        );
        // Loss window opens where the 3-cycle train ends (10 + 3*5 = 25)
        // and 1% maps to 10_000 ppm.
        assert_eq!(
            plan.faults[1],
            PlanFault::CoreLinkLoss {
                from_ms: 25.0,
                until_ms: 40.0,
                loss_ppm: 10_000,
            }
        );
        assert_eq!(
            plan.faults[2],
            PlanFault::SenderBlackout {
                sender: 0,
                from_ms: 10.0,
                until_ms: 14.0,
            }
        );
        // Defaults keep the optional faults off.
        let bare = def.plan(&Params::new()).expect("plan");
        assert_eq!(bare.faults.len(), 1);
        assert!(matches!(bare.faults[0], PlanFault::CoreLinkFlap { .. }));
    }

    #[test]
    fn aq_state_loss_schedules_one_wipe() {
        let def = find("aq_state_loss").expect("registered");
        let plan = def
            .plan(&Params::parse("wipe_at_ms=15").expect("parse"))
            .expect("plan");
        assert_eq!(plan.faults, vec![PlanFault::AqReset { at_ms: 15.0 }]);
        assert_eq!(plan.entities.len(), 2);
        assert!(matches!(plan.run, RunPlan::FixedHorizon { .. }));
    }

    #[test]
    fn fault_free_scenarios_carry_no_faults() {
        for name in [
            "fairness_flows",
            "cc_mix",
            "interpod_fattree",
            "incast_sharedbuf",
            "websearch_aqm_zoo",
        ] {
            let plan = find(name)
                .expect("registered")
                .plan(&Params::new())
                .expect("plan");
            assert!(plan.faults.is_empty(), "{name} should be fault-free");
        }
    }

    #[test]
    fn classic_scenarios_carry_no_buffer_plan() {
        for def in registry() {
            let plan = def.plan(&Params::new()).expect("plan");
            let expect_pool = matches!(def.name, "incast_sharedbuf" | "websearch_aqm_zoo");
            assert_eq!(
                plan.buffers.is_some(),
                expect_pool,
                "{}: unexpected buffer plan presence",
                def.name
            );
        }
    }

    #[test]
    fn incast_sharedbuf_selects_admission_policies() {
        let def = find("incast_sharedbuf").expect("registered");
        let expect = |params: &str, label: &str| {
            let plan = def
                .plan(&Params::parse(params).expect("parse"))
                .expect("plan");
            let bp = plan.buffers.expect("buffer plan");
            assert_eq!(bp.admission.label(), label, "{params}");
            assert_eq!(bp.aqm, AqmKind::Fifo);
            assert_eq!(bp.pool_bytes, 150_000);
        };
        expect("admission=0", "static");
        expect("admission=1", "dt");
        expect("admission=2", "delay");
        let plan = def
            .plan(&Params::parse("admission=1,dt_alpha=0.5,pool_kb=80").expect("parse"))
            .expect("plan");
        let bp = plan.buffers.expect("buffer plan");
        assert_eq!(bp.pool_bytes, 80_000);
        assert_eq!(bp.admission, AdmissionKind::DynamicThreshold { alpha: 0.5 });
    }

    #[test]
    fn websearch_aqm_zoo_selects_disciplines() {
        let def = find("websearch_aqm_zoo").expect("registered");
        for (v, label) in [(0.0, "fifo"), (1.0, "disagg_red"), (2.0, "l4s_step")] {
            let mut p = Params::new();
            p.set("aqm", v);
            let plan = def.plan(&p).expect("plan");
            let bp = plan.buffers.expect("buffer plan");
            assert_eq!(bp.aqm.label(), label);
            assert_eq!(bp.admission.label(), "dt");
            for e in &plan.entities {
                assert_eq!(e.cc, CcAlgo::Dctcp);
                assert!(matches!(e.traffic, Traffic::WebSearch { .. }));
            }
        }
    }

    #[test]
    fn tenant_churn_holds_demand_near_budget() {
        let def = find("tenant_churn").expect("registered");
        let plan = def.plan(&Params::new()).expect("plan");
        assert_eq!(plan.entities.len(), 3);
        let budget = plan.aq_budget.expect("budget");
        assert_eq!(budget.aqs, 7);
        assert_eq!(budget.policy, OverflowKind::RejectNew);
        let churn = plan.churn.expect("churn");
        // Steady-state demand = 3 entity grants + the live tenant train,
        // oscillating target/target+1: 7–8 rows against a 7-row budget —
        // the table sits at 100–114% of budget for the rest of the run.
        assert_eq!(churn.target_live, 4);
        assert!(churn.id_span as usize > churn.target_live);
        assert!(churn.base_id > 3, "tenant ids must clear the grant range");
        // 35 ms of churn at 50 µs cadence = 700 create ticks.
        assert_eq!(churn.ticks, 700);
        assert_eq!(plan.faults, vec![PlanFault::AqReset { at_ms: 20.0 }]);
        // The policy axis flips to eviction; wipe_at_ms=0 disables the wipe.
        let plan = def
            .plan(&Params::parse("policy=1,wipe_at_ms=0").expect("parse"))
            .expect("plan");
        assert_eq!(plan.aq_budget.unwrap().policy, OverflowKind::EvictIdle);
        assert_eq!(plan.aq_budget.unwrap().policy.label(), "evict_idle");
        assert!(plan.faults.is_empty());
    }

    #[test]
    fn classic_scenarios_carry_no_churn_or_budget() {
        for def in registry() {
            let plan = def.plan(&Params::new()).expect("plan");
            let expect = def.name == "tenant_churn";
            assert_eq!(plan.churn.is_some(), expect, "{}: churn", def.name);
            assert_eq!(plan.aq_budget.is_some(), expect, "{}: budget", def.name);
        }
    }

    #[test]
    fn completion_vms_scales_with_params() {
        let def = find("completion_vms").expect("registered");
        let plan = def
            .plan(&Params::parse("vms=4,n_flows=12").expect("parse"))
            .expect("plan");
        for e in &plan.entities {
            assert_eq!(e.n_vms, 4);
            match &e.traffic {
                Traffic::WebSearchClosed { n_flows, .. } => assert_eq!(*n_flows, 12),
                other => panic!("unexpected traffic {other:?}"),
            }
        }
        assert!(matches!(plan.run, RunPlan::UntilComplete { .. }));
    }
}
