//! Traffic matrices: who sends to whom.
//!
//! The paper stresses that "the traffic pattern, i.e., the traffic matrix
//! among all hosts, is arbitrary": any source may talk to any destination
//! with any volume at any time. These generators produce the patterns the
//! experiments need — uniformly random pairs (the "arbitrary" default),
//! fixed pairings, and all-to-one incast.

use aq_netsim::ids::NodeId;
use rand::Rng;

/// A source of `(src, dst)` pairs.
#[derive(Debug, Clone)]
pub enum TrafficMatrix {
    /// Each flow picks a uniformly random source from `srcs` and an
    /// independent uniformly random destination from `dsts` (re-drawn if
    /// equal) — the paper's arbitrary pattern.
    UniformRandom {
        /// Candidate sources.
        srcs: Vec<NodeId>,
        /// Candidate destinations.
        dsts: Vec<NodeId>,
    },
    /// `pairs[i % len]` in round-robin order — fixed pairings such as the
    /// dumbbell's left→right mapping.
    Fixed {
        /// The repeating pair list.
        pairs: Vec<(NodeId, NodeId)>,
    },
    /// Every flow goes from a random member of `srcs` to the single
    /// `target` (Fig. 2's inbound-guarantee scenario).
    AllToOne {
        /// Candidate sources.
        srcs: Vec<NodeId>,
        /// The common destination.
        target: NodeId,
    },
}

impl TrafficMatrix {
    /// Draw the `i`-th flow's endpoints.
    pub fn pick<R: Rng>(&self, rng: &mut R, i: usize) -> (NodeId, NodeId) {
        match self {
            TrafficMatrix::UniformRandom { srcs, dsts } => {
                assert!(!srcs.is_empty() && !dsts.is_empty());
                loop {
                    let s = srcs[rng.gen_range(0..srcs.len())];
                    let d = dsts[rng.gen_range(0..dsts.len())];
                    if s != d {
                        return (s, d);
                    }
                    // Degenerate case: only one host on both sides.
                    if srcs.len() == 1 && dsts.len() == 1 {
                        panic!("uniform matrix with identical single src and dst");
                    }
                }
            }
            TrafficMatrix::Fixed { pairs } => {
                assert!(!pairs.is_empty());
                pairs[i % pairs.len()]
            }
            TrafficMatrix::AllToOne { srcs, target } => {
                assert!(!srcs.is_empty());
                let s = srcs[rng.gen_range(0..srcs.len())];
                assert_ne!(s, *target, "incast sources must exclude the target");
                (s, *target)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn nodes(ids: &[u32]) -> Vec<NodeId> {
        ids.iter().map(|i| NodeId(*i)).collect()
    }

    #[test]
    fn uniform_never_selfloops_and_covers_pairs() {
        let m = TrafficMatrix::UniformRandom {
            srcs: nodes(&[1, 2, 3]),
            dsts: nodes(&[1, 2, 3]),
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..600 {
            let (s, d) = m.pick(&mut rng, i);
            assert_ne!(s, d);
            seen.insert((s.0, d.0));
        }
        assert_eq!(seen.len(), 6, "all ordered pairs appear");
    }

    #[test]
    fn fixed_round_robins() {
        let m = TrafficMatrix::Fixed {
            pairs: vec![(NodeId(1), NodeId(2)), (NodeId(3), NodeId(4))],
        };
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(m.pick(&mut rng, 0), (NodeId(1), NodeId(2)));
        assert_eq!(m.pick(&mut rng, 1), (NodeId(3), NodeId(4)));
        assert_eq!(m.pick(&mut rng, 2), (NodeId(1), NodeId(2)));
    }

    #[test]
    fn all_to_one_targets_one_host() {
        let m = TrafficMatrix::AllToOne {
            srcs: nodes(&[2, 3, 4]),
            target: NodeId(1),
        };
        let mut rng = SmallRng::seed_from_u64(6);
        for i in 0..100 {
            let (s, d) = m.pick(&mut rng, i);
            assert_eq!(d, NodeId(1));
            assert!((2..=4).contains(&s.0));
        }
    }
}
