//! The web-search flow-size distribution.
//!
//! The paper's evaluation replays "a web search workload trace that
//! consists of a diverse mix of small and large TCP flows" — the
//! distribution introduced by the DCTCP paper and used throughout the
//! data-center literature. The original trace is not published as data, so
//! we regenerate flows from the empirical CDF below (sizes in bytes),
//! which reproduces its defining properties: >50 % of flows under 100 KB,
//! a heavy tail past 10 MB, and a mean around 0.6–1 MB. Sampling is
//! inverse-transform with log-linear interpolation between knots, from a
//! caller-seeded RNG, so every run is reproducible.

use rand::Rng;

/// Empirical CDF knots `(flow size in bytes, cumulative probability)`.
pub const WEB_SEARCH_CDF: &[(u64, f64)] = &[
    (1_000, 0.00),
    (5_000, 0.15),
    (10_000, 0.30),
    (20_000, 0.45),
    (30_000, 0.53),
    (50_000, 0.60),
    (80_000, 0.70),
    (200_000, 0.80),
    (1_000_000, 0.90),
    (2_000_000, 0.95),
    (5_000_000, 0.98),
    (30_000_000, 1.00),
];

/// A sampler over an empirical flow-size CDF.
#[derive(Debug, Clone)]
pub struct FlowSizeDist {
    knots: Vec<(u64, f64)>,
}

impl FlowSizeDist {
    /// The web-search distribution.
    pub fn web_search() -> FlowSizeDist {
        FlowSizeDist {
            knots: WEB_SEARCH_CDF.to_vec(),
        }
    }

    /// A custom distribution from CDF knots (must start at probability
    /// 0.0, end at 1.0, and be non-decreasing in both coordinates).
    pub fn from_knots(knots: Vec<(u64, f64)>) -> FlowSizeDist {
        assert!(knots.len() >= 2, "need at least two knots");
        assert_eq!(knots[0].1, 0.0, "first knot must be at p=0");
        assert_eq!(knots[knots.len() - 1].1, 1.0, "last knot must be at p=1");
        for w in knots.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1, "knots must be sorted");
        }
        FlowSizeDist { knots }
    }

    /// Mean flow size implied by the CDF (log-linear interpolation), in
    /// bytes. Used to convert a target load into an arrival rate.
    pub fn mean_bytes(&self) -> f64 {
        // Integrate the piecewise size: for each CDF segment, use the
        // geometric midpoint of its size range (consistent with log-linear
        // inverse sampling).
        let mut mean = 0.0;
        for w in self.knots.windows(2) {
            let p = w[1].1 - w[0].1;
            if p <= 0.0 {
                continue;
            }
            let mid = ((w[0].0 as f64).ln() + (w[1].0 as f64).ln()) / 2.0;
            mean += p * mid.exp();
        }
        mean
    }

    /// Draw one flow size.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        for w in self.knots.windows(2) {
            if u <= w[1].1 {
                let span = w[1].1 - w[0].1;
                let frac = if span > 0.0 { (u - w[0].1) / span } else { 0.0 };
                let lo = (w[0].0 as f64).ln();
                let hi = (w[1].0 as f64).ln();
                return (lo + frac * (hi - lo)).exp().round().max(1.0) as u64;
            }
        }
        self.knots[self.knots.len() - 1].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_support_bounds() {
        let d = FlowSizeDist::web_search();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1_000..=30_000_000).contains(&s), "size {s} out of support");
        }
    }

    #[test]
    fn empirical_quantiles_match_the_cdf() {
        let d = FlowSizeDist::web_search();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sizes: Vec<u64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        sizes.sort_unstable();
        let q = |p: f64| sizes[(p * sizes.len() as f64) as usize];
        // 30 % of flows are ≤ 10 KB, 80 % ≤ 200 KB, 95 % ≤ 2 MB (±
        // interpolation slack).
        assert!((8_000..=12_500).contains(&q(0.30)), "p30 {}", q(0.30));
        assert!((160_000..=250_000).contains(&q(0.80)), "p80 {}", q(0.80));
        assert!(
            (1_600_000..=2_500_000).contains(&q(0.95)),
            "p95 {}",
            q(0.95)
        );
    }

    #[test]
    fn mean_is_in_the_expected_band() {
        let d = FlowSizeDist::web_search();
        let analytic = d.mean_bytes();
        assert!(
            (300_000.0..=1_200_000.0).contains(&analytic),
            "mean {analytic}"
        );
        // Empirical mean agrees with the analytic one within 15 %.
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        let empirical = sum / n as f64;
        assert!(
            (empirical / analytic - 1.0).abs() < 0.15,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn sampling_is_deterministic_under_a_seed() {
        let d = FlowSizeDist::web_search();
        let a: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..100).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..100).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "first knot")]
    fn malformed_knots_are_rejected() {
        FlowSizeDist::from_knots(vec![(10, 0.5), (20, 1.0)]);
    }
}
