//! # aq-workloads — workload generation
//!
//! Regenerates the paper's evaluation workloads:
//!
//! * [`websearch`] — the DCTCP web-search flow-size distribution as an
//!   empirical CDF sampler;
//! * [`arrivals`] — Poisson flow arrivals targeted at an offered load;
//! * [`matrix`] — traffic matrices (arbitrary/uniform, fixed pairs,
//!   all-to-one incast);
//! * [`scenario`] — assembly of entity workloads into concrete
//!   [`aq_transport::FlowSpec`]s and their installation on hosts, plus
//!   small measurement helpers shared by the figure harnesses;
//! * [`registry`] — named, parameterized scenario blueprints
//!   ([`EntitySetup`]/[`Traffic`] descriptions enumerable by name) that
//!   the sweep harness instantiates over parameter grids and seed sets.

pub mod arrivals;
pub mod matrix;
pub mod registry;
pub mod scenario;
pub mod websearch;

pub use arrivals::PoissonArrivals;
pub use matrix::TrafficMatrix;
pub use registry::{
    EntitySetup, LongKind, Params, PlanFault, RunPlan, ScenarioDef, ScenarioPlan, Traffic,
};
pub use scenario::{
    add_flows, ensure_transport_hosts, goodput_gbps, long_flows, run_until_complete,
    ClosedWorkload, WorkloadSpec,
};
pub use websearch::{FlowSizeDist, WEB_SEARCH_CDF};
