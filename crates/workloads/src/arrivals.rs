//! Poisson flow arrivals.
//!
//! Flows in the web-search workload arrive as a Poisson process whose rate
//! is chosen to hit a target offered load on a reference link:
//! `λ = load · capacity / (8 · mean_flow_size)` arrivals per second.

use aq_netsim::time::{Duration, Rate, Time, NS_PER_SEC};
use rand::Rng;

/// A Poisson arrival-time generator.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    /// Mean arrivals per second.
    pub lambda: f64,
}

impl PoissonArrivals {
    /// Arrivals at `lambda` per second.
    pub fn new(lambda: f64) -> PoissonArrivals {
        assert!(lambda > 0.0, "arrival rate must be positive");
        PoissonArrivals { lambda }
    }

    /// The rate that offers `load` (0–1] of `capacity` given the workload's
    /// mean flow size.
    pub fn for_load(load: f64, capacity: Rate, mean_flow_bytes: f64) -> PoissonArrivals {
        assert!(load > 0.0, "load must be positive");
        assert!(mean_flow_bytes > 0.0, "mean flow size must be positive");
        PoissonArrivals::new(load * capacity.as_bps() as f64 / (8.0 * mean_flow_bytes))
    }

    /// Draw one exponential inter-arrival gap.
    pub fn next_gap<R: Rng>(&self, rng: &mut R) -> Duration {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let secs = -u.ln() / self.lambda;
        Duration::from_nanos((secs * NS_PER_SEC as f64) as u64)
    }

    /// All arrival instants in `[start, start + horizon)`.
    pub fn times_in<R: Rng>(&self, rng: &mut R, start: Time, horizon: Duration) -> Vec<Time> {
        let end = start + horizon;
        let mut t = start;
        let mut out = Vec::new();
        loop {
            t += self.next_gap(rng);
            if t >= end {
                return out;
            }
            out.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn arrival_count_matches_lambda() {
        let p = PoissonArrivals::new(10_000.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let times = p.times_in(&mut rng, Time::ZERO, Duration::from_secs(1));
        let n = times.len() as f64;
        // Poisson(10 000): standard deviation = 100, allow ±5σ.
        assert!((9_500.0..=10_500.0).contains(&n), "count {n}");
    }

    #[test]
    fn times_are_sorted_and_within_horizon() {
        let p = PoissonArrivals::new(5_000.0);
        let mut rng = SmallRng::seed_from_u64(4);
        let start = Time::from_millis(10);
        let times = p.times_in(&mut rng, start, Duration::from_millis(50));
        for w in times.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(times
            .iter()
            .all(|t| *t >= start && *t < Time::from_millis(60)));
    }

    #[test]
    fn for_load_derives_the_right_rate() {
        // 10 Gbps at load 0.5 with 625 KB mean flows: 10e9*0.5/(8*625e3)
        // = 1000 flows/s.
        let p = PoissonArrivals::for_load(0.5, Rate::from_gbps(10), 625_000.0);
        assert!((p.lambda - 1000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_is_rejected() {
        PoissonArrivals::new(0.0);
    }
}
