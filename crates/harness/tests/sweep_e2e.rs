//! End-to-end contracts of the sweep orchestrator.
//!
//! * **Scheduling independence** — the same spec run with `jobs = 1` and
//!   `jobs = 4` must produce byte-identical `sweep.json` / `sweep.csv`
//!   and identical per-run report artifacts. This is the harness's core
//!   promise: parallelism changes wall-clock time, never output.
//! * **The gate fires** — a deliberately perturbed metric must show up as
//!   a diff violation, and an unperturbed copy must not.

use aq_bench::Approach;
use aq_harness::agg::Sweep;
use aq_harness::diff::{diff_sweeps, Tolerances};
use aq_harness::drill::drill_down;
use aq_harness::sweep::{expand, run_points, FailureKind, SweepAxis, SweepSpec};
use aq_workloads::registry::Params;
use std::path::{Path, PathBuf};

/// A spec small enough for debug-build CI: one scenario, 2 approaches,
/// 1 grid point, 2 seeds = 4 runs of a few simulated milliseconds.
fn tiny_spec() -> SweepSpec {
    SweepSpec {
        name: "tiny".to_string(),
        axes: vec![SweepAxis {
            scenario: "fairness_flows".to_string(),
            approaches: vec![Approach::Pq, Approach::Aq],
            grid: vec![Params::parse("b_flows=2,horizon_ms=5").expect("grid")],
            seeds: vec![1, 2],
        }],
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    dir
}

fn run_spec_into(spec: &SweepSpec, dir: &Path, jobs: usize) -> Sweep {
    let points = expand(spec).expect("expands");
    let outcome = run_points(&points, jobs, None, Some(dir)).expect("runs");
    assert!(
        outcome.failures.is_empty(),
        "spec must run cleanly: {:?}",
        outcome.failures
    );
    let sweep = Sweep::from_runs(&spec.name, outcome.metrics);
    sweep.write_to(dir).expect("writes artifacts");
    sweep
}

fn run_into(dir: &Path, jobs: usize) -> Sweep {
    run_spec_into(&tiny_spec(), dir, jobs)
}

#[test]
fn jobs_1_and_jobs_4_produce_byte_identical_artifacts() {
    let serial_dir = scratch_dir("sweep_serial");
    let wide_dir = scratch_dir("sweep_wide");
    run_into(&serial_dir, 1);
    run_into(&wide_dir, 4);

    for artifact in ["sweep.json", "sweep.csv"] {
        let a = std::fs::read(serial_dir.join(artifact)).expect("serial artifact");
        let b = std::fs::read(wide_dir.join(artifact)).expect("wide artifact");
        assert_eq!(a, b, "{artifact} differs between --jobs 1 and --jobs 4");
    }

    // Per-run report directories: same set, same bytes.
    let list = |dir: &Path| {
        let mut names: Vec<String> = std::fs::read_dir(dir.join("runs"))
            .expect("runs dir")
            .map(|e| {
                e.expect("dir entry")
                    .file_name()
                    .to_string_lossy()
                    .into_owned()
            })
            .collect();
        names.sort();
        names
    };
    let serial_runs = list(&serial_dir);
    assert_eq!(serial_runs, list(&wide_dir));
    assert_eq!(serial_runs.len(), 4);
    for run in &serial_runs {
        let a = std::fs::read(serial_dir.join("runs").join(run).join("report.json"))
            .expect("serial report");
        let b = std::fs::read(wide_dir.join("runs").join(run).join("report.json"))
            .expect("wide report");
        assert_eq!(a, b, "runs/{run}/report.json differs across job counts");
    }
}

#[test]
fn incast_sharedbuf_reports_are_jobs_invariant() {
    // The shared-buffer layer adds pool state to the hot path (admission
    // checks, occupancy series, the report `buffers` section); none of it
    // may leak scheduling: the same incast spec run with `--jobs 1` and
    // `--jobs 4` must produce byte-identical artifacts and per-run
    // reports across all three admission policies.
    let spec = SweepSpec {
        name: "sharedbuf".to_string(),
        axes: vec![SweepAxis {
            scenario: "incast_sharedbuf".to_string(),
            approaches: vec![Approach::Pq, Approach::Aq],
            grid: vec![
                Params::parse("admission=0,horizon_ms=5").expect("grid"),
                Params::parse("admission=1,horizon_ms=5").expect("grid"),
                Params::parse("admission=2,horizon_ms=5").expect("grid"),
            ],
            seeds: vec![1],
        }],
    };
    let serial_dir = scratch_dir("sharedbuf_serial");
    let wide_dir = scratch_dir("sharedbuf_wide");
    run_spec_into(&spec, &serial_dir, 1);
    run_spec_into(&spec, &wide_dir, 4);

    for artifact in ["sweep.json", "sweep.csv"] {
        let a = std::fs::read(serial_dir.join(artifact)).expect("serial artifact");
        let b = std::fs::read(wide_dir.join(artifact)).expect("wide artifact");
        assert_eq!(a, b, "{artifact} differs between --jobs 1 and --jobs 4");
    }
    let mut runs: Vec<PathBuf> = std::fs::read_dir(serial_dir.join("runs"))
        .expect("runs dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    runs.sort();
    assert_eq!(runs.len(), 6, "2 approaches x 3 admission policies");
    for run in &runs {
        let name = run.file_name().expect("run dir name").to_owned();
        let a = std::fs::read(run.join("report.json")).expect("serial report");
        let b = std::fs::read(wide_dir.join("runs").join(&name).join("report.json"))
            .expect("wide report");
        assert_eq!(
            a,
            b,
            "runs/{}/report.json differs across job counts",
            name.to_string_lossy()
        );
        // The report actually carries the shared-buffer section it is
        // pinning: both dumbbell switches exported pool rows.
        let text = String::from_utf8(a).expect("utf8 report");
        assert!(
            text.contains("\"buffers\":[{"),
            "runs/{}: report carries no buffers section",
            name.to_string_lossy()
        );
    }
}

fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("create copy dir");
    for entry in std::fs::read_dir(from).expect("read dir") {
        let entry = entry.expect("dir entry");
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if src.is_dir() {
            copy_tree(&src, &dst);
        } else {
            std::fs::copy(&src, &dst).expect("copy file");
        }
    }
}

/// Multiply the first occurrence of `"<field>":<int>` in a report by
/// `factor` (or add `delta`), in place.
fn perturb_int_field(path: &Path, field: &str, factor: u64, delta: u64) -> (u64, u64) {
    let text = std::fs::read_to_string(path).expect("read report");
    let needle = format!("\"{field}\":");
    let at = text.find(&needle).expect("field present") + needle.len();
    let end = at
        + text[at..]
            .find(|c: char| !c.is_ascii_digit())
            .expect("digits end");
    let old: u64 = text[at..end].parse().expect("integer field");
    let new = old * factor + delta;
    let patched = format!("{}{}{}", &text[..at], new, &text[end..]);
    std::fs::write(path, patched).expect("write perturbed report");
    (old, new)
}

#[test]
fn drill_down_names_the_perturbed_field_and_absorbs_one_drop() {
    let dir = scratch_dir("drill_base");
    run_into(&dir, 2);
    let copy = scratch_dir("drill_copy");
    copy_tree(&dir, &copy);

    // A faithful copy produces zero field diffs over all four run pairs.
    let tol = Tolerances::default();
    let (diffs, compared) = drill_down(&dir, &copy, &tol).expect("drills");
    assert_eq!(compared, 4);
    assert!(diffs.is_empty(), "faithful copy must be clean: {diffs:?}");

    // One extra drop in one run: inside the absolute slack floor, so the
    // drill-down (like the aggregate gate) stays quiet.
    let run = std::fs::read_dir(copy.join("runs"))
        .expect("runs dir")
        .next()
        .expect("a run")
        .expect("dir entry")
        .file_name()
        .to_string_lossy()
        .into_owned();
    let report = copy.join("runs").join(&run).join("report.json");
    perturb_int_field(&report, "drops", 1, 1);
    let (diffs, _) = drill_down(&dir, &copy, &tol).expect("drills");
    assert!(diffs.is_empty(), "a 0->1 drop is noise: {diffs:?}");

    // A 10x rx_bytes corruption in the same run: the drill-down names the
    // run, the entity row, and the field.
    perturb_int_field(&report, "rx_bytes", 10, 0);
    let (diffs, _) = drill_down(&dir, &copy, &tol).expect("drills");
    assert!(
        diffs
            .iter()
            .any(|d| d.run == run && d.row.starts_with("entity") && d.field == "rx_bytes"),
        "perturbed field must be named with its run and row, got: {diffs:?}"
    );
    assert!(
        diffs.iter().all(|d| d.run == run),
        "untouched runs must stay clean: {diffs:?}"
    );
}

#[test]
fn new_scenarios_execute_through_the_sweep_path() {
    let spec = SweepSpec {
        name: "new_scenarios".to_string(),
        axes: vec![
            SweepAxis {
                scenario: "cc_mix".to_string(),
                approaches: vec![Approach::Aq],
                grid: vec![Params::parse("pair=1,n_flows=4").expect("grid")],
                seeds: vec![1],
            },
            SweepAxis {
                scenario: "interpod_fattree".to_string(),
                approaches: vec![Approach::Aq],
                grid: vec![Params::parse("horizon_ms=10").expect("grid")],
                seeds: vec![1],
            },
        ],
    };
    let points = expand(&spec).expect("expands");
    let outcome = run_points(&points, 2, None, None).expect("runs");
    assert!(
        outcome.failures.is_empty(),
        "new scenarios must run cleanly: {:?}",
        outcome.failures
    );
    assert_eq!(outcome.metrics.len(), 2);
    for (key, metrics) in &outcome.metrics {
        assert!(
            metrics["goodput_total_gbps"] > 0.0,
            "{key} moved no traffic"
        );
        assert!(metrics["jain_goodput"] > 0.0, "{key} has no fairness index");
    }
}

/// The two fault-injection scenarios at small horizons: link flaps (with
/// residual loss and a sender blackout, so every fault kind is exercised)
/// and an AQ table wipe.
fn fault_spec() -> SweepSpec {
    SweepSpec {
        name: "faults".to_string(),
        axes: vec![
            SweepAxis {
                scenario: "linkflap_dumbbell".to_string(),
                approaches: vec![Approach::Aq],
                grid: vec![Params::parse("horizon_ms=30,loss_pct=1,blackout_ms=4").expect("grid")],
                seeds: vec![1, 2],
            },
            SweepAxis {
                scenario: "aq_state_loss".to_string(),
                approaches: vec![Approach::Aq],
                grid: vec![Params::parse("horizon_ms=25").expect("grid")],
                seeds: vec![1, 2],
            },
        ],
    }
}

#[test]
fn fault_scenarios_are_schedule_independent_and_carry_fault_metrics() {
    let serial_dir = scratch_dir("fault_serial");
    let wide_dir = scratch_dir("fault_wide");
    let spec = fault_spec();
    let serial = run_spec_into(&spec, &serial_dir, 1);
    run_spec_into(&spec, &wide_dir, 4);

    // Same seed + same fault plan => byte-identical artifacts regardless
    // of scheduling, per-run reports included.
    for artifact in ["sweep.json", "sweep.csv"] {
        let a = std::fs::read(serial_dir.join(artifact)).expect("serial artifact");
        let b = std::fs::read(wide_dir.join(artifact)).expect("wide artifact");
        assert_eq!(a, b, "{artifact} differs between --jobs 1 and --jobs 4");
    }
    for entry in std::fs::read_dir(serial_dir.join("runs")).expect("runs dir") {
        let run = entry.expect("dir entry").file_name();
        let a = std::fs::read(serial_dir.join("runs").join(&run).join("report.json"))
            .expect("serial report");
        let b = std::fs::read(wide_dir.join("runs").join(&run).join("report.json"))
            .expect("wide report");
        assert_eq!(a, b, "runs/{run:?}/report.json differs across job counts");
    }

    // Every fault run distills the fault metric surface.
    for (key, metrics) in &serial.runs {
        assert!(
            metrics["faults_injected"] >= 1.0,
            "{key} recorded no injected faults"
        );
        assert!(
            metrics.contains_key("goodput_prefault_gbps")
                && metrics.contains_key("goodput_postfault_gbps")
                && metrics.contains_key("postfault_goodput_ratio"),
            "{key} missing pre/post-fault goodput split: {metrics:?}"
        );
        match key.scenario.as_str() {
            "linkflap_dumbbell" => {
                assert!(
                    metrics["link_down_drops"] >= 1.0,
                    "{key}: a flap train must drop in-flight packets"
                );
                assert!(
                    metrics["pause_drops"] >= 1.0,
                    "{key}: the sender blackout must drop paused traffic"
                );
            }
            "aq_state_loss" => {
                assert!(metrics["wipes_total"] >= 1.0, "{key}: no AQ wipes recorded");
                let reconverge = metrics["reconverge_ms_max"];
                assert!(
                    reconverge > 0.0 && reconverge < 15.0,
                    "{key}: wiped AQs must re-converge within the run, got {reconverge}ms"
                );
            }
            other => panic!("unexpected scenario {other}"),
        }
    }
}

#[test]
fn an_overdue_run_times_out_while_the_rest_of_the_grid_completes() {
    // One run with a deliberately enormous horizon (minutes of simulated
    // time — far beyond the wall-clock budget) next to a quick run: the
    // slow run must land in failures as a `timeout`, the quick one must
    // still produce metrics, and the rendered sweep.json must carry the
    // distinct kind.
    let spec = SweepSpec {
        name: "overdue".to_string(),
        axes: vec![SweepAxis {
            scenario: "fairness_flows".to_string(),
            approaches: vec![Approach::Aq],
            grid: vec![
                Params::parse("b_flows=1,horizon_ms=4").expect("grid"),
                Params::parse("b_flows=1,horizon_ms=600000").expect("grid"),
            ],
            seeds: vec![1],
        }],
    };
    let points = expand(&spec).expect("expands");
    let outcome =
        run_points(&points, 2, Some(std::time::Duration::from_secs(2)), None).expect("runs");
    assert_eq!(outcome.metrics.len(), 1, "the quick run must complete");
    assert_eq!(outcome.failures.len(), 1, "the slow run must fail");
    let (key, failure) = outcome.failures.iter().next().expect("one failure");
    assert!(key.params.contains("horizon_ms=600000"));
    assert_eq!(failure.kind, FailureKind::Timeout);
    assert!(failure.message.contains("wall-clock budget"));

    let sweep = Sweep::from_runs(&spec.name, outcome.metrics).with_failures(outcome.failures);
    let rendered = sweep.render_json();
    assert!(
        rendered.contains("\"kind\": \"timeout\""),
        "sweep.json must tag the timeout kind: {rendered}"
    );
    let parsed = Sweep::parse_json(&rendered).expect("parses");
    assert_eq!(
        parsed.failures.values().next().expect("failure").kind,
        FailureKind::Timeout
    );
}

#[test]
fn sweep_dir_round_trips_and_perturbation_fires_the_gate() {
    let dir = scratch_dir("sweep_gate");
    let sweep = run_into(&dir, 2);

    // Loading the directory back reproduces the in-memory sweep exactly.
    let loaded = Sweep::load_dir(&dir).expect("loads");
    assert_eq!(loaded.render_json(), sweep.render_json());
    assert!(
        diff_sweeps(&sweep, &loaded, &Tolerances::default()).is_empty(),
        "a faithful copy must pass the gate"
    );

    // Perturb one aggregate well past its tolerance: the gate must fire.
    let mut perturbed = loaded.clone();
    let config = perturbed
        .configs
        .keys()
        .find(|c| c.approach == "aq")
        .expect("aq config")
        .clone();
    let jain = perturbed
        .configs
        .get_mut(&config)
        .expect("config metrics")
        .get_mut("jain_goodput")
        .expect("jain aggregate");
    jain.mean *= 0.5;
    let violations = diff_sweeps(&sweep, &perturbed, &Tolerances::default());
    assert!(
        violations.iter().any(|v| v.metric == "jain_goodput"),
        "halving jain_goodput must violate its 5% tolerance, got: {violations:?}"
    );
}
