//! End-to-end contracts of the sweep orchestrator.
//!
//! * **Scheduling independence** — the same spec run with `jobs = 1` and
//!   `jobs = 4` must produce byte-identical `sweep.json` / `sweep.csv`
//!   and identical per-run report artifacts. This is the harness's core
//!   promise: parallelism changes wall-clock time, never output.
//! * **The gate fires** — a deliberately perturbed metric must show up as
//!   a diff violation, and an unperturbed copy must not.

use aq_bench::Approach;
use aq_harness::agg::Sweep;
use aq_harness::diff::{diff_sweeps, Tolerances};
use aq_harness::sweep::{expand, run_points, SweepAxis, SweepSpec};
use aq_workloads::registry::Params;
use std::path::PathBuf;

/// A spec small enough for debug-build CI: one scenario, 2 approaches,
/// 1 grid point, 2 seeds = 4 runs of a few simulated milliseconds.
fn tiny_spec() -> SweepSpec {
    SweepSpec {
        name: "tiny".to_string(),
        axes: vec![SweepAxis {
            scenario: "fairness_flows".to_string(),
            approaches: vec![Approach::Pq, Approach::Aq],
            grid: vec![Params::parse("b_flows=2,horizon_ms=5").expect("grid")],
            seeds: vec![1, 2],
        }],
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    dir
}

fn run_into(dir: &PathBuf, jobs: usize) -> Sweep {
    let spec = tiny_spec();
    let points = expand(&spec).expect("expands");
    let merged = run_points(&points, jobs, Some(dir)).expect("runs");
    let sweep = Sweep::from_runs(&spec.name, merged);
    sweep.write_to(dir).expect("writes artifacts");
    sweep
}

#[test]
fn jobs_1_and_jobs_4_produce_byte_identical_artifacts() {
    let serial_dir = scratch_dir("sweep_serial");
    let wide_dir = scratch_dir("sweep_wide");
    run_into(&serial_dir, 1);
    run_into(&wide_dir, 4);

    for artifact in ["sweep.json", "sweep.csv"] {
        let a = std::fs::read(serial_dir.join(artifact)).expect("serial artifact");
        let b = std::fs::read(wide_dir.join(artifact)).expect("wide artifact");
        assert_eq!(a, b, "{artifact} differs between --jobs 1 and --jobs 4");
    }

    // Per-run report directories: same set, same bytes.
    let list = |dir: &PathBuf| {
        let mut names: Vec<String> = std::fs::read_dir(dir.join("runs"))
            .expect("runs dir")
            .map(|e| {
                e.expect("dir entry")
                    .file_name()
                    .to_string_lossy()
                    .into_owned()
            })
            .collect();
        names.sort();
        names
    };
    let serial_runs = list(&serial_dir);
    assert_eq!(serial_runs, list(&wide_dir));
    assert_eq!(serial_runs.len(), 4);
    for run in &serial_runs {
        let a = std::fs::read(serial_dir.join("runs").join(run).join("report.json"))
            .expect("serial report");
        let b = std::fs::read(wide_dir.join("runs").join(run).join("report.json"))
            .expect("wide report");
        assert_eq!(a, b, "runs/{run}/report.json differs across job counts");
    }
}

#[test]
fn sweep_dir_round_trips_and_perturbation_fires_the_gate() {
    let dir = scratch_dir("sweep_gate");
    let sweep = run_into(&dir, 2);

    // Loading the directory back reproduces the in-memory sweep exactly.
    let loaded = Sweep::load_dir(&dir).expect("loads");
    assert_eq!(loaded.render_json(), sweep.render_json());
    assert!(
        diff_sweeps(&sweep, &loaded, &Tolerances::default()).is_empty(),
        "a faithful copy must pass the gate"
    );

    // Perturb one aggregate well past its tolerance: the gate must fire.
    let mut perturbed = loaded.clone();
    let config = perturbed
        .configs
        .keys()
        .find(|c| c.approach == "aq")
        .expect("aq config")
        .clone();
    let jain = perturbed
        .configs
        .get_mut(&config)
        .expect("config metrics")
        .get_mut("jain_goodput")
        .expect("jain aggregate");
    jain.mean *= 0.5;
    let violations = diff_sweeps(&sweep, &perturbed, &Tolerances::default());
    assert!(
        violations.iter().any(|v| v.metric == "jain_goodput"),
        "halving jain_goodput must violate its 5% tolerance, got: {violations:?}"
    );
}
