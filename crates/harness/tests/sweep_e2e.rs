//! End-to-end contracts of the sweep orchestrator.
//!
//! * **Scheduling independence** — the same spec run with `jobs = 1` and
//!   `jobs = 4` must produce byte-identical `sweep.json` / `sweep.csv`
//!   and identical per-run report artifacts. This is the harness's core
//!   promise: parallelism changes wall-clock time, never output.
//! * **The gate fires** — a deliberately perturbed metric must show up as
//!   a diff violation, and an unperturbed copy must not.

use aq_bench::Approach;
use aq_harness::agg::Sweep;
use aq_harness::diff::{diff_sweeps, Tolerances};
use aq_harness::drill::drill_down;
use aq_harness::sweep::{expand, run_points, SweepAxis, SweepSpec};
use aq_workloads::registry::Params;
use std::path::{Path, PathBuf};

/// A spec small enough for debug-build CI: one scenario, 2 approaches,
/// 1 grid point, 2 seeds = 4 runs of a few simulated milliseconds.
fn tiny_spec() -> SweepSpec {
    SweepSpec {
        name: "tiny".to_string(),
        axes: vec![SweepAxis {
            scenario: "fairness_flows".to_string(),
            approaches: vec![Approach::Pq, Approach::Aq],
            grid: vec![Params::parse("b_flows=2,horizon_ms=5").expect("grid")],
            seeds: vec![1, 2],
        }],
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    dir
}

fn run_into(dir: &Path, jobs: usize) -> Sweep {
    let spec = tiny_spec();
    let points = expand(&spec).expect("expands");
    let outcome = run_points(&points, jobs, Some(dir)).expect("runs");
    assert!(outcome.failures.is_empty(), "tiny spec runs cleanly");
    let sweep = Sweep::from_runs(&spec.name, outcome.metrics);
    sweep.write_to(dir).expect("writes artifacts");
    sweep
}

#[test]
fn jobs_1_and_jobs_4_produce_byte_identical_artifacts() {
    let serial_dir = scratch_dir("sweep_serial");
    let wide_dir = scratch_dir("sweep_wide");
    run_into(&serial_dir, 1);
    run_into(&wide_dir, 4);

    for artifact in ["sweep.json", "sweep.csv"] {
        let a = std::fs::read(serial_dir.join(artifact)).expect("serial artifact");
        let b = std::fs::read(wide_dir.join(artifact)).expect("wide artifact");
        assert_eq!(a, b, "{artifact} differs between --jobs 1 and --jobs 4");
    }

    // Per-run report directories: same set, same bytes.
    let list = |dir: &Path| {
        let mut names: Vec<String> = std::fs::read_dir(dir.join("runs"))
            .expect("runs dir")
            .map(|e| {
                e.expect("dir entry")
                    .file_name()
                    .to_string_lossy()
                    .into_owned()
            })
            .collect();
        names.sort();
        names
    };
    let serial_runs = list(&serial_dir);
    assert_eq!(serial_runs, list(&wide_dir));
    assert_eq!(serial_runs.len(), 4);
    for run in &serial_runs {
        let a = std::fs::read(serial_dir.join("runs").join(run).join("report.json"))
            .expect("serial report");
        let b = std::fs::read(wide_dir.join("runs").join(run).join("report.json"))
            .expect("wide report");
        assert_eq!(a, b, "runs/{run}/report.json differs across job counts");
    }
}

fn copy_tree(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).expect("create copy dir");
    for entry in std::fs::read_dir(from).expect("read dir") {
        let entry = entry.expect("dir entry");
        let src = entry.path();
        let dst = to.join(entry.file_name());
        if src.is_dir() {
            copy_tree(&src, &dst);
        } else {
            std::fs::copy(&src, &dst).expect("copy file");
        }
    }
}

/// Multiply the first occurrence of `"<field>":<int>` in a report by
/// `factor` (or add `delta`), in place.
fn perturb_int_field(path: &Path, field: &str, factor: u64, delta: u64) -> (u64, u64) {
    let text = std::fs::read_to_string(path).expect("read report");
    let needle = format!("\"{field}\":");
    let at = text.find(&needle).expect("field present") + needle.len();
    let end = at
        + text[at..]
            .find(|c: char| !c.is_ascii_digit())
            .expect("digits end");
    let old: u64 = text[at..end].parse().expect("integer field");
    let new = old * factor + delta;
    let patched = format!("{}{}{}", &text[..at], new, &text[end..]);
    std::fs::write(path, patched).expect("write perturbed report");
    (old, new)
}

#[test]
fn drill_down_names_the_perturbed_field_and_absorbs_one_drop() {
    let dir = scratch_dir("drill_base");
    run_into(&dir, 2);
    let copy = scratch_dir("drill_copy");
    copy_tree(&dir, &copy);

    // A faithful copy produces zero field diffs over all four run pairs.
    let tol = Tolerances::default();
    let (diffs, compared) = drill_down(&dir, &copy, &tol).expect("drills");
    assert_eq!(compared, 4);
    assert!(diffs.is_empty(), "faithful copy must be clean: {diffs:?}");

    // One extra drop in one run: inside the absolute slack floor, so the
    // drill-down (like the aggregate gate) stays quiet.
    let run = std::fs::read_dir(copy.join("runs"))
        .expect("runs dir")
        .next()
        .expect("a run")
        .expect("dir entry")
        .file_name()
        .to_string_lossy()
        .into_owned();
    let report = copy.join("runs").join(&run).join("report.json");
    perturb_int_field(&report, "drops", 1, 1);
    let (diffs, _) = drill_down(&dir, &copy, &tol).expect("drills");
    assert!(diffs.is_empty(), "a 0->1 drop is noise: {diffs:?}");

    // A 10x rx_bytes corruption in the same run: the drill-down names the
    // run, the entity row, and the field.
    perturb_int_field(&report, "rx_bytes", 10, 0);
    let (diffs, _) = drill_down(&dir, &copy, &tol).expect("drills");
    assert!(
        diffs
            .iter()
            .any(|d| d.run == run && d.row.starts_with("entity") && d.field == "rx_bytes"),
        "perturbed field must be named with its run and row, got: {diffs:?}"
    );
    assert!(
        diffs.iter().all(|d| d.run == run),
        "untouched runs must stay clean: {diffs:?}"
    );
}

#[test]
fn new_scenarios_execute_through_the_sweep_path() {
    let spec = SweepSpec {
        name: "new_scenarios".to_string(),
        axes: vec![
            SweepAxis {
                scenario: "cc_mix".to_string(),
                approaches: vec![Approach::Aq],
                grid: vec![Params::parse("pair=1,n_flows=4").expect("grid")],
                seeds: vec![1],
            },
            SweepAxis {
                scenario: "interpod_fattree".to_string(),
                approaches: vec![Approach::Aq],
                grid: vec![Params::parse("horizon_ms=10").expect("grid")],
                seeds: vec![1],
            },
        ],
    };
    let points = expand(&spec).expect("expands");
    let outcome = run_points(&points, 2, None).expect("runs");
    assert!(
        outcome.failures.is_empty(),
        "new scenarios must run cleanly: {:?}",
        outcome.failures
    );
    assert_eq!(outcome.metrics.len(), 2);
    for (key, metrics) in &outcome.metrics {
        assert!(
            metrics["goodput_total_gbps"] > 0.0,
            "{key} moved no traffic"
        );
        assert!(metrics["jain_goodput"] > 0.0, "{key} has no fairness index");
    }
}

#[test]
fn sweep_dir_round_trips_and_perturbation_fires_the_gate() {
    let dir = scratch_dir("sweep_gate");
    let sweep = run_into(&dir, 2);

    // Loading the directory back reproduces the in-memory sweep exactly.
    let loaded = Sweep::load_dir(&dir).expect("loads");
    assert_eq!(loaded.render_json(), sweep.render_json());
    assert!(
        diff_sweeps(&sweep, &loaded, &Tolerances::default()).is_empty(),
        "a faithful copy must pass the gate"
    );

    // Perturb one aggregate well past its tolerance: the gate must fire.
    let mut perturbed = loaded.clone();
    let config = perturbed
        .configs
        .keys()
        .find(|c| c.approach == "aq")
        .expect("aq config")
        .clone();
    let jain = perturbed
        .configs
        .get_mut(&config)
        .expect("config metrics")
        .get_mut("jain_goodput")
        .expect("jain aggregate");
    jain.mean *= 0.5;
    let violations = diff_sweeps(&sweep, &perturbed, &Tolerances::default());
    assert!(
        violations.iter().any(|v| v.metric == "jain_goodput"),
        "halving jain_goodput must violate its 5% tolerance, got: {violations:?}"
    );
}
