//! `aq-sweep perf` — deterministic engine-throughput harness and the
//! `BENCH_*.json` ratchet gate.
//!
//! The sweep gate answers "did the *metrics* move"; this module answers
//! "did the *engine* slow down". It derives one representative run per
//! scenario from a named sweep spec (the AQ approach, first grid point,
//! first seed), drives each run to completion `--repeat` times, and
//! records two kinds of numbers per scenario:
//!
//! * **deterministic counters** — processed events, transmitted packets,
//!   simulated nanoseconds. These are properties of the seeded run, not
//!   the machine, so the gate compares them under a *tight* tolerance
//!   (an unexplained shift means engine behavior changed);
//! * **wall-clock throughput** — events/sec and simulated packets/sec,
//!   taken from the fastest repeat (min wall time filters scheduler
//!   noise). Machines differ, so the gate compares these under a *loose,
//!   one-sided* tolerance: only a regression below `(1 − tol) ×
//!   baseline` fails; improvements always pass and are ratcheted into
//!   the committed baseline via `--update` on the reference machine.
//!
//! Wall-clock time never enters `RunReport` artifacts — those stay
//! byte-identical for same-seed runs. Perf numbers live only in the
//! `BENCH_*.json` written here.

use crate::sweep::RunPoint;
use aq_bench::json::{self, Json};
use aq_bench::{
    build_experiment, pq_ecn_for, run_sharded_until, run_workload, run_workload_sharded, ExpConfig,
};
use aq_netsim::ids::EntityId;
use aq_netsim::time::Time;
use aq_netsim::SchedulerKind;
use aq_workloads::registry::RunPlan;
use std::fmt::Write as _;
use std::time::Instant;

/// Default relative tolerance for the deterministic counters (`events`,
/// `tx_pkts`, `sim_ns`). Mirrors the sweep gate's tolerance for its
/// `events` metric: counters are seed properties, not machine properties,
/// so any drift beyond noise means the engine changed behavior.
pub const COUNTER_TOLERANCE: f64 = 0.05;

/// Default relative tolerance for wall-clock throughput: a run may be up
/// to 50% slower than the committed baseline before the gate fails.
/// Loose on purpose — CI machines are noisy and heterogeneous; the
/// ratchet (`--update` on the reference machine) is what tracks real
/// speedups.
pub const WALL_TOLERANCE: f64 = 0.5;

/// Measured throughput of one representative run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfRecord {
    /// Scenario name from the registry.
    pub scenario: String,
    /// Approach name, lowercase.
    pub approach: String,
    /// Canonical resolved parameter string.
    pub params: String,
    /// Workload/jitter seed.
    pub seed: u64,
    /// Engine parallelism: `0` is the single-threaded reference engine;
    /// `N > 0` is the sharded engine with `N` worker threads. The
    /// deterministic counters must not depend on this axis — only the
    /// wall-clock columns may.
    pub jobs: u64,
    /// Events processed by the simulator (deterministic).
    pub events: u64,
    /// Packets transmitted across all ports (deterministic).
    pub tx_pkts: u64,
    /// Simulated time driven, in nanoseconds (deterministic).
    pub sim_ns: u64,
    /// Fastest wall-clock time over the repeats, in nanoseconds.
    pub wall_ns: u64,
    /// `events / wall seconds` for the fastest repeat.
    pub events_per_sec: f64,
    /// `tx_pkts / wall seconds` for the fastest repeat.
    pub pkts_per_sec: f64,
}

/// One `BENCH_*.json` document: a spec's per-scenario perf records.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfBench {
    /// Name of the sweep spec the records were derived from.
    pub spec: String,
    /// Event-scheduler implementation the records were measured under.
    pub scheduler: String,
    /// Per-scenario records, in spec order.
    pub records: Vec<PerfRecord>,
}

/// Select the representative perf points of a spec: for every scenario,
/// the first expanded point under the AQ approach (falling back to the
/// scenario's first point when AQ is not swept). One point per scenario
/// keeps the gate fast while still touching every topology and fault
/// plan the spec covers.
pub fn perf_points(points: &[RunPoint]) -> Vec<RunPoint> {
    let mut picked: Vec<RunPoint> = Vec::new();
    for point in points {
        match picked
            .iter()
            .position(|p| p.key.scenario == point.key.scenario)
        {
            None => picked.push(point.clone()),
            Some(i) => {
                if picked[i].key.approach != "aq" && point.key.approach == "aq" {
                    picked[i] = point.clone();
                }
            }
        }
    }
    picked
}

/// Drive one perf point `repeat` times and distill a [`PerfRecord`].
///
/// `jobs = 0` drives the single-threaded reference engine; `jobs > 0`
/// drives the sharded engine with that many worker threads (falling back
/// to the reference engine when the run cannot shard — agents installed,
/// single-shard topology). The timer brackets only the run loop
/// (experiment construction is excluded); the deterministic counters
/// must be identical across repeats or the measurement is rejected — a
/// perf harness that quietly measures nondeterministic runs would hide
/// engine bugs.
pub fn measure(
    point: &RunPoint,
    repeat: usize,
    scheduler: SchedulerKind,
    jobs: u64,
) -> Result<PerfRecord, String> {
    let mut best_wall = u64::MAX;
    let mut counters: Option<(u64, u64, u64)> = None;
    for _ in 0..repeat.max(1) {
        let plan = (point.def.build)(&point.resolved);
        let mut exp = build_experiment(
            point.approach,
            &plan,
            ExpConfig {
                seed: point.key.seed,
                ecn_threshold: pq_ecn_for(point.approach, &plan.entities),
                ..Default::default()
            },
        );
        exp.sim.set_scheduler(scheduler);
        let entity_ids: Vec<EntityId> = plan.entities.iter().map(|e| e.entity).collect();
        let start = Instant::now();
        let done = if jobs == 0 {
            match plan.run {
                RunPlan::FixedHorizon { horizon } => {
                    exp.sim.run_until(Time::ZERO + horizon);
                }
                RunPlan::UntilComplete { deadline } => {
                    run_workload(&mut exp.sim, &entity_ids, Time::ZERO + deadline);
                }
            }
            exp.sim
        } else {
            let workers = usize::try_from(jobs).unwrap_or(usize::MAX);
            match plan.run {
                RunPlan::FixedHorizon { horizon } => {
                    run_sharded_until(exp.sim, &exp.shard_plan, workers, Time::ZERO + horizon)
                }
                RunPlan::UntilComplete { deadline } => {
                    run_workload_sharded(
                        exp.sim,
                        &exp.shard_plan,
                        workers,
                        &entity_ids,
                        Time::ZERO + deadline,
                    )
                    .0
                }
            }
        };
        let wall = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let events = done.processed_events;
        let tx_pkts: u64 = done.stats.ports().map(|(_, ps)| ps.tx_pkts).sum();
        let sim_ns = done.now().as_nanos();
        match counters {
            None => counters = Some((events, tx_pkts, sim_ns)),
            Some(prev) if prev != (events, tx_pkts, sim_ns) => {
                return Err(format!(
                    "{}: repeats disagree on deterministic counters \
                     ({prev:?} vs {:?}) — engine nondeterminism",
                    point.key,
                    (events, tx_pkts, sim_ns)
                ));
            }
            Some(_) => {}
        }
        best_wall = best_wall.min(wall.max(1));
    }
    let (events, tx_pkts, sim_ns) = counters.expect("at least one repeat ran");
    Ok(PerfRecord {
        scenario: point.key.scenario.clone(),
        approach: point.key.approach.clone(),
        params: point.key.params.clone(),
        seed: point.key.seed,
        jobs,
        events,
        tx_pkts,
        sim_ns,
        wall_ns: best_wall,
        events_per_sec: events as f64 * 1e9 / best_wall as f64,
        pkts_per_sec: tx_pkts as f64 * 1e9 / best_wall as f64,
    })
}

/// Deterministic `BENCH_*.json` bytes for a bench document.
pub fn render_json(bench: &PerfBench) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"{}\",", bench.spec);
    let _ = writeln!(out, "  \"scheduler\": \"{}\",", bench.scheduler);
    let _ = writeln!(out, "  \"records\": [");
    for (i, r) in bench.records.iter().enumerate() {
        let comma = if i + 1 < bench.records.len() { "," } else { "" };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"scenario\": \"{}\",", r.scenario);
        let _ = writeln!(out, "      \"approach\": \"{}\",", r.approach);
        let _ = writeln!(out, "      \"params\": \"{}\",", r.params);
        let _ = writeln!(out, "      \"seed\": {},", r.seed);
        let _ = writeln!(out, "      \"jobs\": {},", r.jobs);
        let _ = writeln!(out, "      \"events\": {},", r.events);
        let _ = writeln!(out, "      \"tx_pkts\": {},", r.tx_pkts);
        let _ = writeln!(out, "      \"sim_ns\": {},", r.sim_ns);
        let _ = writeln!(out, "      \"wall_ns\": {},", r.wall_ns);
        let _ = writeln!(out, "      \"events_per_sec\": {:.1},", r.events_per_sec);
        let _ = writeln!(out, "      \"pkts_per_sec\": {:.1}", r.pkts_per_sec);
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

fn field_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("record is missing integer field `{key}`"))
}

fn field_f64(obj: &Json, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("record is missing number field `{key}`"))
}

fn field_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("record is missing string field `{key}`"))
}

/// Parse a `BENCH_*.json` document (inverse of [`render_json`]).
pub fn parse_bench(text: &str) -> Result<PerfBench, String> {
    let doc = json::parse(text).map_err(|e| format!("BENCH json: {e}"))?;
    let spec = field_str(&doc, "bench")?;
    let scheduler = field_str(&doc, "scheduler")?;
    let arr = doc
        .get("records")
        .and_then(Json::as_arr)
        .ok_or("BENCH json: missing `records` array")?;
    let mut records = Vec::with_capacity(arr.len());
    for rec in arr {
        records.push(PerfRecord {
            scenario: field_str(rec, "scenario")?,
            approach: field_str(rec, "approach")?,
            params: field_str(rec, "params")?,
            seed: field_u64(rec, "seed")?,
            jobs: field_u64(rec, "jobs")?,
            events: field_u64(rec, "events")?,
            tx_pkts: field_u64(rec, "tx_pkts")?,
            sim_ns: field_u64(rec, "sim_ns")?,
            wall_ns: field_u64(rec, "wall_ns")?,
            events_per_sec: field_f64(rec, "events_per_sec")?,
            pkts_per_sec: field_f64(rec, "pkts_per_sec")?,
        });
    }
    Ok(PerfBench {
        spec,
        scheduler,
        records,
    })
}

fn rel_delta(baseline: f64, current: f64) -> f64 {
    let denom = baseline.abs().max(current.abs());
    if denom == 0.0 {
        0.0
    } else {
        (current - baseline).abs() / denom
    }
}

/// Compare a current bench against the committed baseline.
///
/// Deterministic counters are gated two-sided at `counter_tol`;
/// wall-clock throughput is gated one-sided at `wall_tol` (only
/// slowdowns fail). Structural mismatches (missing or new records, spec
/// mismatch) are violations too — `--update` is the way to change the
/// baseline's shape.
pub fn diff_bench(
    baseline: &PerfBench,
    current: &PerfBench,
    counter_tol: f64,
    wall_tol: f64,
) -> Vec<String> {
    let mut violations = Vec::new();
    if baseline.spec != current.spec {
        violations.push(format!(
            "spec mismatch: baseline `{}` vs current `{}`",
            baseline.spec, current.spec
        ));
        return violations;
    }
    let ident = |r: &PerfRecord| {
        format!(
            "{} [{}] {{{}}} seed={} jobs={}",
            r.scenario, r.approach, r.params, r.seed, r.jobs
        )
    };
    for b in &baseline.records {
        let Some(c) = current.records.iter().find(|c| {
            c.scenario == b.scenario
                && c.approach == b.approach
                && c.params == b.params
                && c.seed == b.seed
                && c.jobs == b.jobs
        }) else {
            violations.push(format!("{}: record missing from current bench", ident(b)));
            continue;
        };
        for (name, bv, cv) in [
            ("events", b.events, c.events),
            ("tx_pkts", b.tx_pkts, c.tx_pkts),
            ("sim_ns", b.sim_ns, c.sim_ns),
        ] {
            let delta = rel_delta(bv as f64, cv as f64);
            if delta > counter_tol {
                violations.push(format!(
                    "{}: deterministic counter `{name}` moved {bv} -> {cv} \
                     ({:.1}% > {:.1}% tolerance) — engine behavior changed",
                    ident(b),
                    delta * 100.0,
                    counter_tol * 100.0
                ));
            }
        }
        let floor = b.events_per_sec * (1.0 - wall_tol);
        if c.events_per_sec < floor {
            violations.push(format!(
                "{}: throughput regressed {:.0} -> {:.0} events/sec \
                 (floor {:.0} at {:.0}% tolerance)",
                ident(b),
                b.events_per_sec,
                c.events_per_sec,
                floor,
                wall_tol * 100.0
            ));
        }
    }
    for c in &current.records {
        let known = baseline.records.iter().any(|b| {
            b.scenario == c.scenario
                && b.approach == c.approach
                && b.params == c.params
                && b.seed == c.seed
                && b.jobs == c.jobs
        });
        if !known {
            violations.push(format!(
                "{}: record not in baseline (run with --update to ratchet)",
                ident(c)
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{expand, SweepAxis, SweepSpec};
    use aq_bench::Approach;
    use aq_workloads::registry::Params;

    fn bench_fixture() -> PerfBench {
        PerfBench {
            spec: "smoke".to_string(),
            scheduler: "wheel".to_string(),
            records: vec![PerfRecord {
                scenario: "fairness_flows".to_string(),
                approach: "aq".to_string(),
                params: "b_flows=1,horizon_ms=20".to_string(),
                seed: 1,
                jobs: 0,
                events: 100_000,
                tx_pkts: 40_000,
                sim_ns: 20_000_000,
                wall_ns: 50_000_000,
                events_per_sec: 2_000_000.0,
                pkts_per_sec: 800_000.0,
            }],
        }
    }

    #[test]
    fn perf_points_pick_one_aq_point_per_scenario() {
        let points = expand(&crate::smoke_spec()).expect("smoke expands");
        let picked = perf_points(&points);
        assert_eq!(picked.len(), 8, "one point per smoke scenario");
        for p in &picked {
            assert_eq!(p.key.approach, "aq");
            assert_eq!(p.key.seed, 1);
        }
        let mut scenarios: Vec<&str> = picked.iter().map(|p| p.key.scenario.as_str()).collect();
        scenarios.sort_unstable();
        scenarios.dedup();
        assert_eq!(scenarios.len(), 8);
    }

    #[test]
    fn bench_json_roundtrips() {
        let bench = bench_fixture();
        let rendered = render_json(&bench);
        let parsed = parse_bench(&rendered).expect("parses");
        assert_eq!(parsed, bench);
    }

    #[test]
    fn diff_passes_on_identity_and_on_improvement() {
        let bench = bench_fixture();
        assert!(diff_bench(&bench, &bench, COUNTER_TOLERANCE, WALL_TOLERANCE).is_empty());
        let mut faster = bench.clone();
        faster.records[0].wall_ns /= 4;
        faster.records[0].events_per_sec *= 4.0;
        faster.records[0].pkts_per_sec *= 4.0;
        assert!(
            diff_bench(&bench, &faster, COUNTER_TOLERANCE, WALL_TOLERANCE).is_empty(),
            "improvements must never fail the gate"
        );
    }

    #[test]
    fn diff_fails_on_injected_regression_and_counter_drift() {
        let bench = bench_fixture();
        let mut slow = bench.clone();
        slow.records[0].events_per_sec /= 4.0;
        let v = diff_bench(&bench, &slow, COUNTER_TOLERANCE, WALL_TOLERANCE);
        assert_eq!(v.len(), 1, "one throughput violation: {v:?}");
        assert!(v[0].contains("throughput regressed"));

        let mut drifted = bench.clone();
        drifted.records[0].events += 50_000;
        let v = diff_bench(&bench, &drifted, COUNTER_TOLERANCE, WALL_TOLERANCE);
        assert!(
            v.iter().any(|m| m.contains("`events`")),
            "counter drift must fail: {v:?}"
        );

        let missing = PerfBench {
            records: Vec::new(),
            ..bench.clone()
        };
        let v = diff_bench(&bench, &missing, COUNTER_TOLERANCE, WALL_TOLERANCE);
        assert!(v[0].contains("missing"));
    }

    #[test]
    fn measure_is_deterministic_and_counts_work() {
        let spec = SweepSpec {
            name: "unit".to_string(),
            axes: vec![SweepAxis {
                scenario: "fairness_flows".to_string(),
                approaches: vec![Approach::Aq],
                grid: vec![Params::parse("b_flows=1,horizon_ms=2").expect("grid")],
                seeds: vec![1],
            }],
        };
        let points = expand(&spec).expect("expands");
        let picked = perf_points(&points);
        let r1 = measure(&picked[0], 2, SchedulerKind::default(), 0).expect("measures");
        assert!(r1.events > 0);
        assert!(r1.tx_pkts > 0);
        assert_eq!(r1.sim_ns, 2_000_000);
        assert!(r1.events_per_sec > 0.0);
        let r2 = measure(&picked[0], 1, SchedulerKind::default(), 0).expect("measures");
        assert_eq!(
            (r1.events, r1.tx_pkts, r1.sim_ns),
            (r2.events, r2.tx_pkts, r2.sim_ns),
            "counters are seed properties, not timing properties"
        );
    }

    #[test]
    fn sharded_measure_reproduces_the_reference_counters() {
        // The jobs axis may only move wall-clock columns: the deterministic
        // counters of a sharded measurement must equal the reference
        // engine's, for both a shardable dumbbell and a fallback run.
        let spec = SweepSpec {
            name: "unit".to_string(),
            axes: vec![SweepAxis {
                scenario: "fairness_flows".to_string(),
                approaches: vec![Approach::Aq],
                grid: vec![Params::parse("b_flows=1,horizon_ms=2").expect("grid")],
                seeds: vec![1],
            }],
        };
        let points = expand(&spec).expect("expands");
        let picked = perf_points(&points);
        let reference = measure(&picked[0], 1, SchedulerKind::default(), 0).expect("measures");
        for jobs in [1, 2, 4] {
            let sharded = measure(&picked[0], 1, SchedulerKind::default(), jobs).expect("measures");
            assert_eq!(
                (reference.events, reference.tx_pkts, reference.sim_ns),
                (sharded.events, sharded.tx_pkts, sharded.sim_ns),
                "jobs={jobs} moved a deterministic counter"
            );
            assert_eq!(sharded.jobs, jobs);
        }
    }
}
