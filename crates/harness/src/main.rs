//! `aq-sweep` — the sweep orchestrator CLI.
//!
//! ```text
//! aq-sweep list
//! aq-sweep run  [--spec smoke] [--jobs N] [--out DIR] [--seeds 1,2,3] [--no-trends]
//! aq-sweep diff <baseline-dir> <current-dir>
//! aq-sweep check <sweep-dir>
//! aq-sweep soak [--minutes N] [--seed S] [--jobs J] [--out DIR]
//! ```
//!
//! Exit codes: `0` success, `1` gate violation (diff tolerance breach or
//! trend failure), `2` usage or I/O error.

use aq_bench::report::RunReport;
use aq_harness::agg::Sweep;
use aq_harness::diff::{diff_sweeps, render_violations, Tolerances};
use aq_harness::drill;
use aq_harness::oracle;
use aq_harness::perf;
use aq_harness::sweep::{expand, run_points};
use aq_harness::trends::{check_trends, DEFAULT_RULES};
use aq_harness::{find_spec, named_specs, soak_round_spec};
use aq_netsim::SchedulerKind;
use aq_workloads::registry;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
aq-sweep: parallel multi-seed sweep orchestrator with a regression gate

USAGE:
  aq-sweep list
      Show registered scenarios (with parameters) and named sweeps.
  aq-sweep run [--spec NAME] [--jobs N] [--out DIR] [--seeds a,b,c]
               [--timeout-s S] [--no-trends]
      Execute a named sweep (default: smoke), write DIR/sweep.json,
      DIR/sweep.csv and per-run reports under DIR/runs/, then evaluate
      trend rules. Default out: target/sweeps/<spec>. Default jobs: 1.
      Each run is supervised under a per-run wall-clock budget (default
      600 s): an overdue run is abandoned and recorded as a `timeout`
      failure while the rest of the grid completes.
  aq-sweep diff [--drill-down] BASELINE_DIR CURRENT_DIR
      Compare two sweep directories under per-metric relative tolerances;
      print a violation table and exit 1 on any violation. When both
      directories carry per-run reports (runs/), each shared run's
      report.json is also compared field by field, tracing aggregate
      violations to the exact (run, section, row, field) that moved;
      --drill-down makes missing runs/ an error instead of a skip.
  aq-sweep check SWEEP_DIR
      Evaluate trend rules against an existing sweep directory.
  aq-sweep soak [--minutes N] [--seed S] [--jobs J] [--out DIR]
                [--timeout-s S]
      Chaos soak: run N seed-rotation rounds (one per requested minute,
      default 10) of the smoke+extended grids — fault trains, shared-
      buffer pressure, and the budget-overflowed tenant-churn scenario —
      each round at a seed derived from --seed (default 1) and the round
      index, writing artifacts under DIR/round<K>/ (default
      target/sweeps/soak). Every run report is checked against the
      invariant oracle (byte conservation, pool and AQ-table budget
      bounds, degradation accounting); any violation or failed run exits
      1. Same --seed and --minutes replay byte-identical artifacts.
  aq-sweep perf [--spec NAME] [--repeat N] [--out FILE] [--baseline FILE]
                [--update] [--tolerance F] [--counter-tolerance F]
                [--scheduler wheel|heap] [--jobs LIST]
      Measure engine throughput (events/sec, packets/sec) on one
      representative run per scenario of a named sweep (default: smoke;
      default repeat: 3, fastest repeat wins) and write a BENCH json
      (default out: target/perf/BENCH_<spec>.json). --jobs takes a comma
      list of engine parallelism levels and measures every scenario at
      each one: 0 (the default) is the single-threaded reference engine,
      N > 0 the sharded engine with N worker threads. With --baseline,
      diff against a committed BENCH json: deterministic counters are
      gated two-sided (default 5%), wall-clock throughput one-sided
      (default 50% — only slowdowns fail; improvements always pass).
      --update rewrites the baseline file from this run (the ratchet).

EXIT CODES: 0 ok, 1 gate violation, 2 usage/I-O error.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "list" => cmd_list(),
        "run" => cmd_run(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "soak" => cmd_soak(&args[1..]),
        "perf" => cmd_perf(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("aq-sweep: unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn cmd_list() -> ExitCode {
    println!("scenarios:");
    for def in registry::registry() {
        println!("  {:<16} {}", def.name, def.summary);
        for p in def.params {
            println!(
                "    --param {:<12} default {:<8} {}",
                p.name, p.default, p.help
            );
        }
    }
    println!("sweeps:");
    for spec in named_specs() {
        let n = expand(&spec).map(|p| p.len()).unwrap_or(0);
        println!("  {:<16} {} runs", spec.name, n);
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut spec_name = "smoke".to_string();
    let mut jobs = 1usize;
    let mut out: Option<PathBuf> = None;
    let mut seeds: Option<Vec<u64>> = None;
    let mut run_trends = true;
    let mut timeout_s = 600u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => match it.next() {
                Some(v) => spec_name = v.clone(),
                None => return usage_err("--spec needs a value"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => jobs = v,
                _ => return usage_err("--jobs needs a positive integer"),
            },
            "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage_err("--out needs a value"),
            },
            "--seeds" => {
                let parsed: Option<Vec<u64>> = it
                    .next()
                    .map(|v| v.split(',').map(|s| s.trim().parse().ok()).collect())
                    .unwrap_or(None);
                match parsed {
                    Some(v) if !v.is_empty() => seeds = Some(v),
                    _ => return usage_err("--seeds needs a comma-separated u64 list"),
                }
            }
            "--timeout-s" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => timeout_s = v,
                _ => return usage_err("--timeout-s needs a positive integer"),
            },
            "--no-trends" => run_trends = false,
            other => return usage_err(&format!("unknown flag `{other}`")),
        }
    }
    let Some(mut spec) = find_spec(&spec_name) else {
        return usage_err(&format!("unknown sweep spec `{spec_name}`"));
    };
    if let Some(seeds) = seeds {
        for axis in &mut spec.axes {
            axis.seeds = seeds.clone();
        }
    }
    let out = out.unwrap_or_else(|| Path::new("target/sweeps").join(&spec.name));
    let points = match expand(&spec) {
        Ok(p) => p,
        Err(e) => return io_err(&e),
    };
    println!(
        "sweep `{}`: {} runs over {} job(s) -> {}",
        spec.name,
        points.len(),
        jobs,
        out.display()
    );
    let timeout = std::time::Duration::from_secs(timeout_s);
    let outcome = match run_points(&points, jobs, Some(timeout), Some(&out)) {
        Ok(m) => m,
        Err(e) => return io_err(&e),
    };
    let sweep = Sweep::from_runs(&spec.name, outcome.metrics).with_failures(outcome.failures);
    if let Err(e) = sweep.write_to(&out) {
        return io_err(&format!("writing sweep artifacts: {e}"));
    }
    println!(
        "wrote {} configs, {} runs: sweep.json + sweep.csv",
        sweep.configs.len(),
        sweep.runs.len()
    );
    if !sweep.failures.is_empty() {
        // Artifacts are written (so the failure is diffable), but a
        // partially-failed sweep is never a green run.
        eprintln!("{} run(s) FAILED:", sweep.failures.len());
        for (key, error) in &sweep.failures {
            eprintln!("  {key}: {error}");
        }
        return ExitCode::from(1);
    }
    if run_trends {
        let failures = check_trends(&sweep, DEFAULT_RULES);
        if !failures.is_empty() {
            eprintln!("trend check FAILED:");
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::from(1);
        }
        println!("trend check passed ({} rules)", DEFAULT_RULES.len());
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut force_drill = false;
    let mut dirs = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--drill-down" => force_drill = true,
            other => dirs.push(PathBuf::from(other)),
        }
    }
    let [baseline_dir, current_dir] = dirs.as_slice() else {
        return usage_err("diff needs exactly: [--drill-down] BASELINE_DIR CURRENT_DIR");
    };
    let baseline = match Sweep::load_dir(baseline_dir) {
        Ok(s) => s,
        Err(e) => return io_err(&e),
    };
    let current = match Sweep::load_dir(current_dir) {
        Ok(s) => s,
        Err(e) => return io_err(&e),
    };
    let tol = Tolerances::default();
    let violations = diff_sweeps(&baseline, &current, &tol);

    // Drill down whenever both sides carry per-run reports; --drill-down
    // turns a missing runs/ directory into a hard error.
    let both_have_runs = drill::has_runs(baseline_dir) && drill::has_runs(current_dir);
    if force_drill && !both_have_runs {
        return io_err("--drill-down needs runs/ under both sweep directories");
    }
    let field_diffs = if both_have_runs {
        match drill::drill_down(baseline_dir, current_dir, &tol) {
            Ok((diffs, compared)) => {
                println!("drill-down: {compared} run pair(s) compared");
                diffs
            }
            Err(e) => return io_err(&e),
        }
    } else {
        Vec::new()
    };

    if violations.is_empty() && field_diffs.is_empty() {
        println!(
            "diff clean: {} configs, {} runs match `{}` within tolerances",
            current.configs.len(),
            current.runs.len(),
            baseline.name
        );
        return ExitCode::SUCCESS;
    }
    if !violations.is_empty() {
        eprintln!("{}", render_violations(&violations));
    }
    if !field_diffs.is_empty() {
        eprintln!("{}", drill::render_field_diffs(&field_diffs));
    }
    ExitCode::from(1)
}

fn cmd_check(args: &[String]) -> ExitCode {
    let [dir] = args else {
        return usage_err("check needs exactly: SWEEP_DIR");
    };
    let sweep = match Sweep::load_dir(Path::new(dir)) {
        Ok(s) => s,
        Err(e) => return io_err(&e),
    };
    let failures = check_trends(&sweep, DEFAULT_RULES);
    if failures.is_empty() {
        println!("trend check passed ({} rules)", DEFAULT_RULES.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("trend check FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::from(1)
    }
}

fn cmd_soak(args: &[String]) -> ExitCode {
    let mut minutes = 10u64;
    let mut seed = 1u64;
    let mut jobs = 1usize;
    let mut out: Option<PathBuf> = None;
    let mut timeout_s = 600u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--minutes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => minutes = v,
                _ => return usage_err("--minutes needs a positive integer"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage_err("--seed needs a u64"),
            },
            "--jobs" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => jobs = v,
                _ => return usage_err("--jobs needs a positive integer"),
            },
            "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage_err("--out needs a value"),
            },
            "--timeout-s" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => timeout_s = v,
                _ => return usage_err("--timeout-s needs a positive integer"),
            },
            other => return usage_err(&format!("unknown flag `{other}`")),
        }
    }
    let out = out.unwrap_or_else(|| PathBuf::from("target/sweeps/soak"));
    let timeout = std::time::Duration::from_secs(timeout_s);
    let mut total_runs = 0usize;
    let mut violations: Vec<String> = Vec::new();
    for round in 0..minutes {
        let spec = soak_round_spec(seed, round);
        let points = match expand(&spec) {
            Ok(p) => p,
            Err(e) => return io_err(&e),
        };
        let round_dir = out.join(format!("round{round}"));
        println!(
            "soak round {}/{}: {} runs (seed {}) -> {}",
            round + 1,
            minutes,
            points.len(),
            seed.wrapping_add(round.wrapping_mul(1000)),
            round_dir.display()
        );
        let outcome = match run_points(&points, jobs, Some(timeout), Some(&round_dir)) {
            Ok(m) => m,
            Err(e) => return io_err(&e),
        };
        let sweep = Sweep::from_runs(&spec.name, outcome.metrics).with_failures(outcome.failures);
        if let Err(e) = sweep.write_to(&round_dir) {
            return io_err(&format!("writing sweep artifacts: {e}"));
        }
        if !sweep.failures.is_empty() {
            eprintln!(
                "soak round {round}: {} run(s) FAILED:",
                sweep.failures.len()
            );
            for (key, error) in &sweep.failures {
                eprintln!("  {key}: {error}");
            }
            return ExitCode::from(1);
        }
        // Gate every run report of the round on the invariant oracle.
        for point in &points {
            let path = round_dir
                .join("runs")
                .join(point.key.dir_name())
                .join("report.json");
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => return io_err(&format!("reading {}: {e}", path.display())),
            };
            let report = match RunReport::parse_json(&text) {
                Ok(r) => r,
                Err(e) => return io_err(&format!("{}: {e}", path.display())),
            };
            violations.extend(oracle::check_report(&report));
            total_runs += 1;
        }
        if !violations.is_empty() {
            break;
        }
    }
    if violations.is_empty() {
        println!("soak clean: oracle passed on {total_runs} run report(s)");
        ExitCode::SUCCESS
    } else {
        eprintln!("soak ORACLE VIOLATIONS ({}):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::from(1)
    }
}

fn cmd_perf(args: &[String]) -> ExitCode {
    let mut spec_name = "smoke".to_string();
    let mut repeat = 3usize;
    let mut out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut update = false;
    let mut wall_tol = perf::WALL_TOLERANCE;
    let mut counter_tol = perf::COUNTER_TOLERANCE;
    let mut scheduler = SchedulerKind::default();
    let mut jobs_axis: Vec<u64> = vec![0];
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => match it.next() {
                Some(v) => spec_name = v.clone(),
                None => return usage_err("--spec needs a value"),
            },
            "--jobs" => match it.next().map(|v| parse_jobs_axis(v)) {
                Some(Ok(list)) => jobs_axis = list,
                _ => {
                    return usage_err(
                        "--jobs needs a comma list of worker counts (0 = reference engine)",
                    )
                }
            },
            "--repeat" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => repeat = v,
                _ => return usage_err("--repeat needs a positive integer"),
            },
            "--out" => match it.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return usage_err("--out needs a value"),
            },
            "--baseline" => match it.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage_err("--baseline needs a value"),
            },
            "--update" => update = true,
            "--tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if (0.0..1.0).contains(&v) => wall_tol = v,
                _ => return usage_err("--tolerance needs a fraction in [0, 1)"),
            },
            "--counter-tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if (0.0..1.0).contains(&v) => counter_tol = v,
                _ => return usage_err("--counter-tolerance needs a fraction in [0, 1)"),
            },
            "--scheduler" => match it.next().map(|v| SchedulerKind::parse(v)) {
                Some(Some(k)) => scheduler = k,
                _ => return usage_err("--scheduler needs `wheel` or `heap`"),
            },
            other => return usage_err(&format!("unknown flag `{other}`")),
        }
    }
    if update && baseline.is_none() {
        return usage_err("--update needs --baseline FILE to rewrite");
    }
    let Some(spec) = find_spec(&spec_name) else {
        return usage_err(&format!("unknown sweep spec `{spec_name}`"));
    };
    let points = match expand(&spec) {
        Ok(p) => p,
        Err(e) => return io_err(&e),
    };
    let picked = perf::perf_points(&points);
    println!(
        "perf `{}`: {} scenario(s), {} repeat(s), scheduler `{}`, jobs {:?}",
        spec.name,
        picked.len(),
        repeat,
        scheduler.name(),
        jobs_axis
    );
    let mut records = Vec::with_capacity(picked.len() * jobs_axis.len());
    for point in &picked {
        for &jobs in &jobs_axis {
            match perf::measure(point, repeat, scheduler, jobs) {
                Ok(r) => {
                    println!(
                        "  {:<20} jobs={} {:>10} events  {:>9.0} events/sec  {:>9.0} pkts/sec",
                        r.scenario, r.jobs, r.events, r.events_per_sec, r.pkts_per_sec
                    );
                    records.push(r);
                }
                Err(e) => return io_err(&e),
            }
        }
    }
    let bench = perf::PerfBench {
        spec: spec.name.clone(),
        scheduler: scheduler.name().to_string(),
        records,
    };
    let rendered = perf::render_json(&bench);
    let out =
        out.unwrap_or_else(|| Path::new("target/perf").join(format!("BENCH_{}.json", spec.name)));
    if let Some(parent) = out.parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            return io_err(&format!("creating {}: {e}", parent.display()));
        }
    }
    if let Err(e) = std::fs::write(&out, &rendered) {
        return io_err(&format!("writing {}: {e}", out.display()));
    }
    println!("wrote {}", out.display());
    let Some(baseline_path) = baseline else {
        return ExitCode::SUCCESS;
    };
    if update {
        if let Err(e) = std::fs::write(&baseline_path, &rendered) {
            return io_err(&format!("writing {}: {e}", baseline_path.display()));
        }
        println!("ratcheted baseline {}", baseline_path.display());
        return ExitCode::SUCCESS;
    }
    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => return io_err(&format!("reading {}: {e}", baseline_path.display())),
    };
    let base = match perf::parse_bench(&text) {
        Ok(b) => b,
        Err(e) => return io_err(&format!("{}: {e}", baseline_path.display())),
    };
    let violations = perf::diff_bench(&base, &bench, counter_tol, wall_tol);
    if violations.is_empty() {
        println!(
            "perf gate clean: {} record(s) within tolerances of {}",
            bench.records.len(),
            baseline_path.display()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("perf gate FAILED against {}:", baseline_path.display());
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::from(1)
    }
}

/// Parse a `--jobs` comma list (`"0,1,4"`) into parallelism levels.
/// `0` means the single-threaded reference engine; duplicates are
/// rejected so one BENCH document never carries ambiguous rows.
fn parse_jobs_axis(text: &str) -> Result<Vec<u64>, String> {
    let mut out = Vec::new();
    for part in text.split(',') {
        let v: u64 = part
            .trim()
            .parse()
            .map_err(|_| format!("bad jobs value `{part}`"))?;
        if out.contains(&v) {
            return Err(format!("duplicate jobs value `{v}`"));
        }
        out.push(v);
    }
    if out.is_empty() {
        return Err("empty jobs list".to_string());
    }
    Ok(out)
}

fn usage_err(message: &str) -> ExitCode {
    eprintln!("aq-sweep: {message}\n{USAGE}");
    ExitCode::from(2)
}

fn io_err(message: &str) -> ExitCode {
    eprintln!("aq-sweep: {message}");
    ExitCode::from(2)
}
