//! Qualitative trend assertions over a sweep.
//!
//! EXPERIMENTS.md records the paper's *shape* expectations (AQ fair where
//! PQ is not, AQ completion flat as scale grows). The numeric diff gate
//! only catches drift against a baseline; these rules catch a sweep whose
//! numbers are self-consistent but *qualitatively wrong* — e.g. AQ losing
//! fairness to FIFO. `aq-sweep check` (and `run`) evaluates every rule
//! whose scenario appears in the sweep; rules for absent scenarios are
//! skipped, not failed.

use crate::agg::{ConfigKey, Sweep};
use std::collections::BTreeMap;

/// One qualitative expectation.
#[derive(Debug, Clone)]
pub enum TrendRule {
    /// At every shared params point of `scenario`, metric under approach
    /// `better` must be ≥ the same metric under `worse` minus `slack`.
    NotWorseThan {
        /// Scenario name.
        scenario: &'static str,
        /// Aggregated metric (compared on ensemble means).
        metric: &'static str,
        /// Approach expected to dominate.
        better: &'static str,
        /// Approach providing the floor.
        worse: &'static str,
        /// Additive slack.
        slack: f64,
    },
    /// At every shared params point of `scenario`, metric under approach
    /// `faster` must be ≤ `slower`'s value times `factor`.
    AtMostFactorOf {
        /// Scenario name.
        scenario: &'static str,
        /// Aggregated metric (compared on ensemble means).
        metric: &'static str,
        /// Approach expected to stay fast.
        faster: &'static str,
        /// Approach providing the ceiling.
        slower: &'static str,
        /// Multiplicative headroom.
        factor: f64,
    },
    /// Across all params points of `scenario` under one approach, the
    /// metric must stay flat: relative spread `(max−min)/max ≤ spread`.
    FlatAcrossParams {
        /// Scenario name.
        scenario: &'static str,
        /// Aggregated metric (compared on ensemble means).
        metric: &'static str,
        /// Approach under test.
        approach: &'static str,
        /// Allowed relative spread.
        spread: f64,
    },
    /// At every params point of `scenario` under `approach`, the metric's
    /// ensemble mean must be at least `floor` (absolute bound — used where
    /// no second approach provides a reference, e.g. recovery ratios).
    AtLeast {
        /// Scenario name.
        scenario: &'static str,
        /// Aggregated metric (checked on ensemble means).
        metric: &'static str,
        /// Approach under test.
        approach: &'static str,
        /// Smallest acceptable mean.
        floor: f64,
    },
    /// At every params point of `scenario` under `approach`, the metric's
    /// ensemble mean must be at most `ceiling` (absolute bound).
    AtMost {
        /// Scenario name.
        scenario: &'static str,
        /// Aggregated metric (checked on ensemble means).
        metric: &'static str,
        /// Approach under test.
        approach: &'static str,
        /// Largest acceptable mean.
        ceiling: f64,
    },
}

impl TrendRule {
    /// The scenario this rule watches. The static analyzer's
    /// `registry-coverage` rule cross-checks these names against
    /// `aq_workloads::registry` at lint time; this accessor is the
    /// runtime counterpart used by the coverage test below.
    pub fn scenario(&self) -> &'static str {
        match self {
            TrendRule::NotWorseThan { scenario, .. }
            | TrendRule::AtMostFactorOf { scenario, .. }
            | TrendRule::FlatAcrossParams { scenario, .. }
            | TrendRule::AtLeast { scenario, .. }
            | TrendRule::AtMost { scenario, .. } => scenario,
        }
    }
}

/// The distinct scenarios watched by a rule set, sorted.
pub fn covered_scenarios(rules: &[TrendRule]) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = rules.iter().map(TrendRule::scenario).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The repo's standing expectations, derived from EXPERIMENTS.md.
///
/// * Fig. 8 shape: flow-count unfairness — AQ restores entity fairness
///   that FIFO (PQ) loses, and entity 1's goodput under AQ does not decay
///   as entity 2 adds flows.
/// * Fig. 9 shape: UDP/TCP sharing — AQ keeps the TCP entity alive where
///   PQ lets UDP take the link.
/// * Fig. 6/10 shape: AQ completes about as fast as the raw network and
///   completion stays flat as VM count grows.
pub const DEFAULT_RULES: &[TrendRule] = &[
    TrendRule::NotWorseThan {
        scenario: "fairness_flows",
        metric: "jain_goodput",
        better: "aq",
        worse: "pq",
        slack: 0.05,
    },
    TrendRule::FlatAcrossParams {
        scenario: "fairness_flows",
        metric: "goodput_e1_gbps",
        approach: "aq",
        spread: 0.20,
    },
    TrendRule::NotWorseThan {
        scenario: "udp_tcp_share",
        metric: "jain_goodput",
        better: "aq",
        worse: "pq",
        slack: 0.05,
    },
    TrendRule::AtMostFactorOf {
        scenario: "completion_vms",
        metric: "completion_max_s",
        faster: "aq",
        slower: "pq",
        factor: 1.25,
    },
    TrendRule::FlatAcrossParams {
        scenario: "completion_vms",
        metric: "completion_max_s",
        approach: "aq",
        spread: 0.30,
    },
    // Fig. 10 shape: mixed-CC sharing — AQ isolates entities running
    // different CC algorithms where a shared FIFO lets the more
    // aggressive one win.
    TrendRule::NotWorseThan {
        scenario: "cc_mix",
        metric: "jain_goodput",
        better: "aq",
        worse: "pq",
        slack: 0.05,
    },
    TrendRule::AtMostFactorOf {
        scenario: "cc_mix",
        metric: "completion_max_s",
        faster: "aq",
        slower: "pq",
        factor: 1.30,
    },
    // Inter-pod fat tree: AQ's per-entity fairness must survive ECMP and
    // multi-hop core paths, not just the single dumbbell bottleneck.
    TrendRule::NotWorseThan {
        scenario: "interpod_fattree",
        metric: "jain_goodput",
        better: "aq",
        worse: "pq",
        slack: 0.05,
    },
    // Fault robustness: once a link-flap train clears, goodput must
    // recover to near its pre-fault level (the RTO backoff machinery must
    // not strand senders), and full-run fairness must survive the outage.
    TrendRule::AtLeast {
        scenario: "linkflap_dumbbell",
        metric: "postfault_goodput_ratio",
        approach: "aq",
        floor: 0.6,
    },
    TrendRule::AtLeast {
        scenario: "linkflap_dumbbell",
        metric: "jain_goodput",
        approach: "aq",
        floor: 0.8,
    },
    // AQ state loss: a wiped AQ table must re-converge from subsequent
    // arrivals within a bounded window, and the wipe must not depress
    // post-wipe goodput.
    TrendRule::AtMost {
        scenario: "aq_state_loss",
        metric: "reconverge_ms_max",
        approach: "aq",
        ceiling: 20.0,
    },
    TrendRule::AtLeast {
        scenario: "aq_state_loss",
        metric: "postfault_goodput_ratio",
        approach: "aq",
        floor: 0.6,
    },
    // Shared-buffer incast: AQ must keep two equal entities fair through
    // a small admission-controlled pool, and the pool occupancy peak must
    // never exceed the default 150 KB capacity (the hard cap the
    // SharedBufferPool enforces before any policy runs).
    TrendRule::AtLeast {
        scenario: "incast_sharedbuf",
        metric: "jain_goodput",
        approach: "aq",
        floor: 0.8,
    },
    TrendRule::AtMost {
        scenario: "incast_sharedbuf",
        metric: "pool_peak_bytes",
        approach: "pq",
        ceiling: 150_000.0,
    },
    // AQM zoo: whatever physical AQM the switch egress runs, AQ's virtual
    // ECN must keep the two DCTCP entities fair, and the DT-guarded pool
    // stays within capacity.
    TrendRule::AtLeast {
        scenario: "websearch_aqm_zoo",
        metric: "jain_goodput",
        approach: "aq",
        floor: 0.7,
    },
    TrendRule::AtMost {
        scenario: "websearch_aqm_zoo",
        metric: "pool_peak_bytes",
        approach: "pq",
        ceiling: 150_000.0,
    },
    // Tenant churn against a register budget: control-plane create/
    // destroy pressure must never park a grant that carries real traffic
    // (the churned tenant slots are the ones that overflow), flows keep
    // completing through the mid-churn wipe, and fairness among the
    // grant-holding entities stays in the demand-limited band (the
    // entities run at load 0.25, so Jain here reflects workload skew,
    // not allocation error — the floor guards against collapse, not
    // jitter). Gap re-convergence is gated by `aq_state_loss`, whose
    // traffic persists past the wipe; tenant_churn's light load can
    // legitimately drain right after it.
    TrendRule::AtLeast {
        scenario: "tenant_churn",
        metric: "jain_goodput",
        approach: "aq",
        floor: 0.6,
    },
    TrendRule::AtMost {
        scenario: "tenant_churn",
        metric: "degraded_flows_total",
        approach: "aq",
        ceiling: 0.0,
    },
    TrendRule::AtLeast {
        scenario: "tenant_churn",
        metric: "completion_frac",
        approach: "aq",
        floor: 0.5,
    },
];

/// Mean of `metric` for `(scenario, approach, params)`, if aggregated.
fn mean_of(
    sweep: &Sweep,
    scenario: &str,
    approach: &str,
    params: &str,
    metric: &str,
) -> Option<f64> {
    let key = ConfigKey {
        scenario: scenario.to_string(),
        approach: approach.to_string(),
        params: params.to_string(),
    };
    sweep.configs.get(&key)?.get(metric).map(|a| a.mean)
}

/// All params points of `scenario` present under `approach`.
fn params_points<'a>(sweep: &'a Sweep, scenario: &str, approach: &str) -> Vec<&'a str> {
    sweep
        .configs
        .keys()
        .filter(|c| c.scenario == scenario && c.approach == approach)
        .map(|c| c.params.as_str())
        .collect()
}

/// Evaluate `rules` against a sweep; returns human-readable failures.
/// Rules whose scenario/approach pair is absent from the sweep are
/// skipped — a smoke sweep need not cover every scenario.
pub fn check_trends(sweep: &Sweep, rules: &[TrendRule]) -> Vec<String> {
    let mut failures = Vec::new();
    for rule in rules {
        match rule {
            TrendRule::NotWorseThan {
                scenario,
                metric,
                better,
                worse,
                slack,
            } => {
                for params in params_points(sweep, scenario, better) {
                    let (Some(b), Some(w)) = (
                        mean_of(sweep, scenario, better, params, metric),
                        mean_of(sweep, scenario, worse, params, metric),
                    ) else {
                        continue;
                    };
                    if b < w - slack {
                        failures.push(format!(
                            "{scenario}/{{{params}}}: {metric} under {better} ({b:.4}) \
                             below {worse} ({w:.4}) beyond slack {slack:.2}"
                        ));
                    }
                }
            }
            TrendRule::AtMostFactorOf {
                scenario,
                metric,
                faster,
                slower,
                factor,
            } => {
                for params in params_points(sweep, scenario, faster) {
                    let (Some(f), Some(s)) = (
                        mean_of(sweep, scenario, faster, params, metric),
                        mean_of(sweep, scenario, slower, params, metric),
                    ) else {
                        continue;
                    };
                    if f > s * factor {
                        failures.push(format!(
                            "{scenario}/{{{params}}}: {metric} under {faster} ({f:.4}) \
                             exceeds {factor:.2}x {slower} ({s:.4})"
                        ));
                    }
                }
            }
            TrendRule::AtLeast {
                scenario,
                metric,
                approach,
                floor,
            } => {
                for params in params_points(sweep, scenario, approach) {
                    if let Some(v) = mean_of(sweep, scenario, approach, params, metric) {
                        if v < *floor {
                            failures.push(format!(
                                "{scenario}/{{{params}}}: {metric} under {approach} \
                                 ({v:.4}) below floor {floor:.2}"
                            ));
                        }
                    }
                }
            }
            TrendRule::AtMost {
                scenario,
                metric,
                approach,
                ceiling,
            } => {
                for params in params_points(sweep, scenario, approach) {
                    if let Some(v) = mean_of(sweep, scenario, approach, params, metric) {
                        if v > *ceiling {
                            failures.push(format!(
                                "{scenario}/{{{params}}}: {metric} under {approach} \
                                 ({v:.4}) exceeds ceiling {ceiling:.2}"
                            ));
                        }
                    }
                }
            }
            TrendRule::FlatAcrossParams {
                scenario,
                metric,
                approach,
                spread,
            } => {
                let mut values: BTreeMap<&str, f64> = BTreeMap::new();
                for params in params_points(sweep, scenario, approach) {
                    if let Some(v) = mean_of(sweep, scenario, approach, params, metric) {
                        values.insert(params, v);
                    }
                }
                if values.len() < 2 {
                    continue;
                }
                let max = values.values().cloned().fold(f64::NEG_INFINITY, f64::max);
                let min = values.values().cloned().fold(f64::INFINITY, f64::min);
                if max > 0.0 && (max - min) / max > *spread {
                    failures.push(format!(
                        "{scenario}: {metric} under {approach} not flat across params \
                         (min {min:.4}, max {max:.4}, spread {:.3} > {spread:.2})",
                        (max - min) / max
                    ));
                }
            }
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunKey;

    fn sweep_of(points: &[(&str, &str, &str, &str, f64)]) -> Sweep {
        let mut runs = std::collections::BTreeMap::new();
        for (scenario, approach, params, metric, value) in points {
            let key = RunKey {
                scenario: scenario.to_string(),
                approach: approach.to_string(),
                params: params.to_string(),
                seed: 1,
            };
            let entry: &mut std::collections::BTreeMap<String, f64> = runs.entry(key).or_default();
            entry.insert(metric.to_string(), *value);
        }
        Sweep::from_runs("unit", runs)
    }

    #[test]
    fn fair_aq_passes_and_unfair_aq_fails() {
        let good = sweep_of(&[
            ("fairness_flows", "aq", "b_flows=4", "jain_goodput", 0.99),
            ("fairness_flows", "pq", "b_flows=4", "jain_goodput", 0.60),
        ]);
        assert!(check_trends(&good, DEFAULT_RULES).is_empty());
        let bad = sweep_of(&[
            ("fairness_flows", "aq", "b_flows=4", "jain_goodput", 0.50),
            ("fairness_flows", "pq", "b_flows=4", "jain_goodput", 0.90),
        ]);
        let failures = check_trends(&bad, DEFAULT_RULES);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("jain_goodput"));
    }

    #[test]
    fn flatness_rule_fires_on_decay() {
        let decaying = sweep_of(&[
            ("fairness_flows", "aq", "b_flows=1", "goodput_e1_gbps", 5.0),
            ("fairness_flows", "aq", "b_flows=8", "goodput_e1_gbps", 1.0),
        ]);
        let failures = check_trends(&decaying, DEFAULT_RULES);
        assert!(failures.iter().any(|f| f.contains("not flat")));
    }

    #[test]
    fn rules_for_absent_scenarios_are_skipped() {
        let unrelated = sweep_of(&[("udp_tcp_share", "aq", "h=1", "jain_goodput", 0.99)]);
        assert!(check_trends(&unrelated, DEFAULT_RULES).is_empty());
    }

    #[test]
    fn absolute_floor_and_ceiling_rules_fire_on_fault_scenarios() {
        let good = sweep_of(&[
            (
                "linkflap_dumbbell",
                "aq",
                "flaps=2",
                "postfault_goodput_ratio",
                0.95,
            ),
            ("linkflap_dumbbell", "aq", "flaps=2", "jain_goodput", 0.97),
            (
                "aq_state_loss",
                "aq",
                "wipe_at_ms=10",
                "reconverge_ms_max",
                3.0,
            ),
            (
                "aq_state_loss",
                "aq",
                "wipe_at_ms=10",
                "postfault_goodput_ratio",
                1.02,
            ),
        ]);
        assert!(check_trends(&good, DEFAULT_RULES).is_empty());

        let bad = sweep_of(&[
            (
                "linkflap_dumbbell",
                "aq",
                "flaps=2",
                "postfault_goodput_ratio",
                0.2,
            ),
            (
                "aq_state_loss",
                "aq",
                "wipe_at_ms=10",
                "reconverge_ms_max",
                500.0,
            ),
        ]);
        let failures = check_trends(&bad, DEFAULT_RULES);
        assert!(
            failures.iter().any(|f| f.contains("below floor")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("exceeds ceiling")),
            "{failures:?}"
        );
    }

    #[test]
    fn completion_factor_rule_fires() {
        let slow_aq = sweep_of(&[
            ("completion_vms", "aq", "vms=2", "completion_max_s", 2.0),
            ("completion_vms", "pq", "vms=2", "completion_max_s", 1.0),
        ]);
        let failures = check_trends(&slow_aq, DEFAULT_RULES);
        assert!(failures.iter().any(|f| f.contains("exceeds")));
    }

    #[test]
    fn default_rules_cover_every_registered_scenario() {
        // Runtime counterpart of the analyzer's `registry-coverage` rule:
        // every scenario in the registry must be watched by at least one
        // default trend rule, and no rule may dangle on an unregistered
        // scenario name.
        let covered = covered_scenarios(DEFAULT_RULES);
        for def in aq_workloads::registry::registry() {
            assert!(
                covered.contains(&def.name),
                "scenario `{}` has no trend rule in DEFAULT_RULES",
                def.name
            );
        }
        for scenario in covered {
            assert!(
                aq_workloads::registry::find(scenario).is_some(),
                "trend rule names unregistered scenario `{scenario}`"
            );
        }
    }
}
