//! Sweep declaration and execution.
//!
//! A sweep is `(scenario × approach × parameter grid × seed set)` over the
//! named scenarios in [`aq_workloads::registry`]. Expansion produces one
//! [`RunPoint`] per combination, keyed by a totally-ordered [`RunKey`];
//! execution fans points over the worker pool (see [`crate::pool`]) and
//! merges results into a `BTreeMap<RunKey, _>`, so the merged artifact is
//! byte-identical no matter how many jobs ran or how they interleaved.
//!
//! Every run also writes its full [`RunReport`] under
//! `<out>/runs/<run key>/`, one directory per run, so per-seed artifacts
//! never collide even when written concurrently.

use crate::pool::{run_supervised, TaskResult};
use aq_bench::report::RunReport;
use aq_bench::{build_experiment, pq_ecn_for, run_workload, Approach, ExpConfig};
use aq_netsim::ids::EntityId;
use aq_netsim::stats::minmax_ratio;
use aq_netsim::time::{Duration as SimDuration, Time};
use aq_workloads::registry::{self, Params, PlanFault, RunPlan, ScenarioDef};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Identity of one run inside a sweep: the deterministic merge key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct RunKey {
    /// Scenario name from the registry.
    pub scenario: String,
    /// Approach name, lowercase (`pq`/`aq`/`prl`/`drl`).
    pub approach: String,
    /// Canonical resolved parameter string (see [`Params::canonical`]).
    pub params: String,
    /// Workload/jitter seed.
    pub seed: u64,
}

impl RunKey {
    /// Filesystem-safe directory name for this run's report artifacts.
    pub fn dir_name(&self) -> String {
        format!(
            "{}+{}+{}+seed{}",
            self.scenario, self.approach, self.params, self.seed
        )
    }
}

impl fmt::Display for RunKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {{{}}} seed={}",
            self.scenario, self.approach, self.params, self.seed
        )
    }
}

/// One expanded point of a sweep, ready to execute.
#[derive(Debug, Clone)]
pub struct RunPoint {
    /// Merge key.
    pub key: RunKey,
    /// Scenario blueprint.
    pub def: &'static ScenarioDef,
    /// Fully-resolved parameters (defaults merged).
    pub resolved: Params,
    /// Sharing approach wrapped around the workload.
    pub approach: Approach,
}

/// One axis of a sweep: a scenario crossed with approaches, a parameter
/// grid, and seeds.
#[derive(Debug, Clone)]
pub struct SweepAxis {
    /// Registry scenario name.
    pub scenario: String,
    /// Approaches to compare.
    pub approaches: Vec<Approach>,
    /// Parameter overrides, one entry per grid point (an empty `Params`
    /// is the all-defaults point; an empty grid means just that point).
    pub grid: Vec<Params>,
    /// Seed ensemble.
    pub seeds: Vec<u64>,
}

/// A declared sweep.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name (recorded in `sweep.json`).
    pub name: String,
    /// Axes, expanded independently and merged.
    pub axes: Vec<SweepAxis>,
}

/// Parse an approach name (case-insensitive).
pub fn parse_approach(name: &str) -> Option<Approach> {
    match name.to_ascii_lowercase().as_str() {
        "pq" => Some(Approach::Pq),
        "aq" => Some(Approach::Aq),
        "prl" => Some(Approach::Prl),
        "drl" => Some(Approach::Drl),
        _ => None,
    }
}

/// Expand a spec into its run points, validated, key-sorted, deduplicated.
pub fn expand(spec: &SweepSpec) -> Result<Vec<RunPoint>, String> {
    let mut points: BTreeMap<RunKey, RunPoint> = BTreeMap::new();
    for axis in &spec.axes {
        let def = registry::find(&axis.scenario)
            .ok_or_else(|| format!("unknown scenario `{}`", axis.scenario))?;
        if axis.approaches.is_empty() {
            return Err(format!("axis `{}` lists no approaches", axis.scenario));
        }
        if axis.seeds.is_empty() {
            return Err(format!("axis `{}` lists no seeds", axis.scenario));
        }
        let grid: &[Params] = if axis.grid.is_empty() {
            &[Params::new()]
        } else {
            &axis.grid
        };
        for overrides in grid {
            let resolved = def.resolve(overrides)?;
            for &approach in &axis.approaches {
                for &seed in &axis.seeds {
                    let key = RunKey {
                        scenario: def.name.to_string(),
                        approach: approach.name().to_ascii_lowercase(),
                        params: resolved.canonical(),
                        seed,
                    };
                    points.entry(key.clone()).or_insert(RunPoint {
                        key,
                        def,
                        resolved: resolved.clone(),
                        approach,
                    });
                }
            }
        }
    }
    Ok(points.into_values().collect())
}

/// The window of simulation time disturbed by a fault plan, in
/// milliseconds: from the earliest fault onset to the latest fault end
/// (flap trains end when the last up transition fires; point faults like
/// an AQ wipe start and end at their trigger). `None` for a fault-free
/// plan.
fn fault_window_ms(faults: &[PlanFault]) -> Option<(f64, f64)> {
    let mut window: Option<(f64, f64)> = None;
    for f in faults {
        let (s, e) = match *f {
            PlanFault::CoreLinkFlap {
                first_down_ms,
                flaps,
                down_ms,
                up_ms,
            } => (
                first_down_ms,
                first_down_ms + flaps as f64 * (down_ms + up_ms),
            ),
            PlanFault::CoreLinkLoss {
                from_ms, until_ms, ..
            } => (from_ms, until_ms),
            PlanFault::AqReset { at_ms } => (at_ms, at_ms),
            PlanFault::SenderBlackout {
                from_ms, until_ms, ..
            } => (from_ms, until_ms),
        };
        window = Some(match window {
            None => (s, e),
            Some((ws, we)) => (ws.min(s), we.max(e)),
        });
    }
    window
}

fn ms_to_sim(ms: f64) -> SimDuration {
    SimDuration::from_nanos((ms * 1e6).round() as u64)
}

/// Execute one run point: build the experiment on the scenario's own
/// topology, drive it per the scenario's [`RunPlan`], and distill the
/// canonical metric map. When `report_base` is given, the full
/// [`RunReport`] is also written under `<report_base>/<run dir name>/`.
///
/// Fault scenarios (a plan with a non-empty fault set, driven on a fixed
/// horizon) capture two extra report sections — `prefault` at the first
/// fault's onset and `fault_end` when the last fault clears — so the
/// distilled metrics can compare goodput before the disturbance against
/// goodput after recovery (`postfault_goodput_ratio`), alongside the
/// per-cause drop counters and AQ re-convergence times from the final
/// section.
pub fn execute_run(
    point: &RunPoint,
    report_base: Option<&Path>,
) -> Result<BTreeMap<String, f64>, String> {
    let plan = (point.def.build)(&point.resolved);
    let mut exp = build_experiment(
        point.approach,
        &plan,
        ExpConfig {
            seed: point.key.seed,
            ecn_threshold: pq_ecn_for(point.approach, &plan.entities),
            ..Default::default()
        },
    );
    let entity_ids: Vec<EntityId> = plan.entities.iter().map(|e| e.entity).collect();
    let mut rep = RunReport::new(&point.key.dir_name());
    let completions: Vec<Option<f64>> = match plan.run {
        RunPlan::FixedHorizon { horizon } => {
            let horizon_ms = horizon.as_secs_f64() * 1e3;
            if let Some((start_ms, end_ms)) = fault_window_ms(&plan.faults) {
                if start_ms > 0.0 && start_ms < horizon_ms {
                    exp.sim.run_until(Time::ZERO + ms_to_sim(start_ms));
                    rep.capture("prefault", &mut exp.sim);
                }
                if end_ms > start_ms && end_ms < horizon_ms {
                    exp.sim.run_until(Time::ZERO + ms_to_sim(end_ms));
                    rep.capture("fault_end", &mut exp.sim);
                }
            }
            exp.sim.run_until(Time::ZERO + horizon);
            vec![None; entity_ids.len()]
        }
        RunPlan::UntilComplete { deadline } => {
            run_workload(&mut exp.sim, &entity_ids, Time::ZERO + deadline)
        }
    };
    rep.capture("run", &mut exp.sim);
    if let Some(base) = report_base {
        rep.write_to(base)
            .map_err(|e| format!("{}: writing run report: {e}", point.key))?;
    }
    let section = rep
        .sections()
        .last()
        .ok_or_else(|| format!("{}: capture produced no section", point.key))?;
    let mut metrics: BTreeMap<String, f64> = BTreeMap::new();
    metrics.insert("events".to_string(), section.events as f64);
    metrics.insert("jain_goodput".to_string(), section.jain_goodput);
    let mut total_goodput = 0.0;
    let mut flows_completed = 0u64;
    let mut flows_total = 0u64;
    for e in &section.entities {
        total_goodput += e.goodput_gbps;
        flows_completed += e.flows_completed;
        flows_total += e.flows;
        metrics.insert(format!("goodput_e{}_gbps", e.entity), e.goodput_gbps);
        metrics.insert(format!("drops_e{}", e.entity), e.drops as f64);
    }
    metrics.insert("goodput_total_gbps".to_string(), total_goodput);
    metrics.insert("flows_completed_total".to_string(), flows_completed as f64);
    if flows_total > 0 {
        metrics.insert(
            "completion_frac".to_string(),
            flows_completed as f64 / flows_total as f64,
        );
    }
    for (id, done) in entity_ids.iter().zip(&completions) {
        if let Some(secs) = done {
            metrics.insert(format!("completion_e{}_s", id.0), *secs);
        }
    }
    let finished: Vec<f64> = completions.iter().filter_map(|c| *c).collect();
    if finished.len() == entity_ids.len() && !finished.is_empty() {
        let max = finished.iter().cloned().fold(f64::MIN, f64::max);
        let min = finished.iter().cloned().fold(f64::MAX, f64::min);
        metrics.insert("completion_max_s".to_string(), max);
        metrics.insert("completion_ratio".to_string(), minmax_ratio(min, max));
    }
    if !plan.faults.is_empty() {
        let faults = &section.faults;
        metrics.insert("faults_injected".to_string(), faults.injected.len() as f64);
        metrics.insert("link_down_drops".to_string(), faults.link_down_drops as f64);
        metrics.insert("corrupt_drops".to_string(), faults.corrupt_drops as f64);
        metrics.insert("pause_drops".to_string(), faults.pause_drops as f64);
        let wipes: u64 = section.aqs.iter().map(|a| a.wipes).sum();
        if wipes > 0 {
            metrics.insert("wipes_total".to_string(), wipes as f64);
            // An AQ that never re-converged is scored at the full run
            // length — pessimistic, and guaranteed to trip a re-convergence
            // ceiling rule. Only AQs with arrivals *after* the wipe owe a
            // re-convergence, though: one whose flows all completed before
            // the fault, or that never carried traffic at all (churned
            // tenant slots deployed for table pressure only), has no gap
            // state to rebuild, and scoring it would pin the metric at the
            // horizon.
            let wiped_base = rep
                .sections()
                .iter()
                .find(|s| s.label == "fault_end")
                .or_else(|| rep.sections().iter().find(|s| s.label == "prefault"));
            let post_arrived = |a: &aq_bench::report::AqRow| -> u64 {
                let before = wiped_base
                    .and_then(|s| {
                        s.aqs
                            .iter()
                            .find(|b| b.tag == a.tag && b.position == a.position)
                    })
                    .map(|b| b.arrived_bytes)
                    .unwrap_or(0);
                a.arrived_bytes.saturating_sub(before)
            };
            let worst_ns = section
                .aqs
                .iter()
                .filter(|a| a.wipes > 0 && post_arrived(a) > 0)
                .map(|a| {
                    if a.reconverge_ns == u64::MAX {
                        section.now_ns
                    } else {
                        a.reconverge_ns
                    }
                })
                .max()
                .unwrap_or(0);
            metrics.insert("reconverge_ms_max".to_string(), worst_ns as f64 / 1e6);
        }
        let pre = rep.sections().iter().find(|s| s.label == "prefault");
        let base = rep
            .sections()
            .iter()
            .find(|s| s.label == "fault_end")
            .or(pre);
        if let (Some(pre), Some(base)) = (pre, base) {
            if base.now_ns < section.now_ns {
                let pre_gbps: f64 = pre.entities.iter().map(|e| e.goodput_gbps).sum();
                let rx = |s: &aq_bench::report::Section| -> u64 {
                    s.entities.iter().map(|e| e.rx_bytes).sum()
                };
                let post_bytes = rx(section).saturating_sub(rx(base));
                // bits per nanosecond == Gbit/s, exactly.
                let post_gbps = post_bytes as f64 * 8.0 / (section.now_ns - base.now_ns) as f64;
                metrics.insert("goodput_prefault_gbps".to_string(), pre_gbps);
                metrics.insert("goodput_postfault_gbps".to_string(), post_gbps);
                if pre_gbps > 0.0 {
                    metrics.insert("postfault_goodput_ratio".to_string(), post_gbps / pre_gbps);
                }
            }
        }
    }
    if !section.buffers.is_empty() {
        let rejects: u64 = section.buffers.iter().map(|b| b.shared_rejects).sum();
        let marks: u64 = section.buffers.iter().map(|b| b.marks).sum();
        let peak = section
            .buffers
            .iter()
            .map(|b| b.peak_occupancy_bytes)
            .max()
            .unwrap_or(0);
        metrics.insert("sharedbuf_rejects_total".to_string(), rejects as f64);
        metrics.insert("sharedbuf_marks_total".to_string(), marks as f64);
        metrics.insert("pool_peak_bytes".to_string(), peak as f64);
    }
    if !section.tables.is_empty() {
        let sum = |f: fn(&aq_bench::report::TableRow) -> u64| -> f64 {
            section.tables.iter().map(f).sum::<u64>() as f64
        };
        metrics.insert(
            "degraded_flows_total".to_string(),
            sum(|t| t.degraded_flows),
        );
        metrics.insert(
            "rejected_deploys_total".to_string(),
            sum(|t| t.rejected_deploys),
        );
        metrics.insert("evictions_total".to_string(), sum(|t| t.evictions));
        metrics.insert("readmissions_total".to_string(), sum(|t| t.readmissions));
        let peak = section
            .tables
            .iter()
            .map(|t| t.peak_bytes)
            .max()
            .unwrap_or(0);
        metrics.insert("table_peak_bytes".to_string(), peak as f64);
    }
    Ok(metrics)
}

/// Why a run failed — the `kind` field of `sweep.json` failure entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureKind {
    /// The run returned an error (capture, report I/O, …).
    Error,
    /// The run panicked; the pool caught the unwind.
    Panic,
    /// The run exceeded its wall-clock budget and was abandoned by the
    /// pool supervisor.
    Timeout,
}

impl FailureKind {
    /// Stable artifact label.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Error => "error",
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
        }
    }

    /// Parse counterpart of [`FailureKind::as_str`].
    pub fn parse(s: &str) -> Option<FailureKind> {
        match s {
            "error" => Some(FailureKind::Error),
            "panic" => Some(FailureKind::Panic),
            "timeout" => Some(FailureKind::Timeout),
            _ => None,
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One failed run: its classification plus the human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFailure {
    /// Failure classification.
    pub kind: FailureKind,
    /// What happened (error text, panic payload, or the exceeded budget).
    pub message: String,
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.message)
    }
}

/// Every run of an executed sweep, split into successes and failures.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Per-run metric maps for runs that completed.
    pub metrics: BTreeMap<RunKey, BTreeMap<String, f64>>,
    /// Per-run failures (error / panic / timeout) for runs that did not.
    pub failures: BTreeMap<RunKey, RunFailure>,
}

/// Execute a whole spec over `jobs` workers. Per-run reports go under
/// `<out>/runs/`; the caller renders the merged result (see
/// [`crate::agg::Sweep`]). Point order in the output is key order —
/// independent of scheduling.
///
/// A run that errors, *panics* (the pool catches the unwind), or — when
/// `timeout` is set — overruns its wall-clock budget lands in
/// [`SweepOutcome::failures`] with a distinct [`FailureKind`] instead of
/// aborting the sweep: the rest of the grid still executes (the
/// supervised pool replaces workers lost to hung runs), and the caller
/// turns a non-empty failure set into a nonzero exit after writing the
/// artifacts.
pub fn run_points(
    points: &[RunPoint],
    jobs: usize,
    timeout: Option<Duration>,
    out: Option<&Path>,
) -> Result<SweepOutcome, String> {
    let report_base = out.map(|o| o.join("runs"));
    if let Some(base) = &report_base {
        std::fs::create_dir_all(base).map_err(|e| format!("creating {}: {e}", base.display()))?;
    }
    // The supervised pool detaches its workers (a hung run must not pin
    // the pool), so the task closure owns its inputs.
    let shared: Arc<Vec<RunPoint>> = Arc::new(points.to_vec());
    let base = report_base.clone();
    let results = run_supervised(points.len(), jobs, timeout, move |i| {
        execute_run(&shared[i], base.as_deref())
    });
    let mut outcome = SweepOutcome::default();
    for (point, result) in points.iter().zip(results) {
        let failure = match result {
            TaskResult::Done(Ok(metrics)) => {
                outcome.metrics.insert(point.key.clone(), metrics);
                continue;
            }
            TaskResult::Done(Err(e)) => RunFailure {
                kind: FailureKind::Error,
                message: e,
            },
            TaskResult::Panicked(m) => RunFailure {
                kind: FailureKind::Panic,
                message: m,
            },
            TaskResult::TimedOut => {
                let budget = timeout.expect("timeouts only fire under a budget");
                RunFailure {
                    kind: FailureKind::Timeout,
                    message: format!(
                        "run exceeded the {:.0}s wall-clock budget",
                        budget.as_secs_f64()
                    ),
                }
            }
        };
        outcome.failures.insert(point.key.clone(), failure);
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_axis() -> SweepAxis {
        SweepAxis {
            scenario: "fairness_flows".to_string(),
            approaches: vec![Approach::Pq, Approach::Aq],
            grid: vec![
                Params::parse("b_flows=1,horizon_ms=5").expect("grid"),
                Params::parse("b_flows=2,horizon_ms=5").expect("grid"),
            ],
            seeds: vec![1, 2],
        }
    }

    #[test]
    fn expansion_is_sorted_validated_and_deduplicated() {
        let spec = SweepSpec {
            name: "unit".to_string(),
            axes: vec![tiny_axis(), tiny_axis()],
        };
        let points = expand(&spec).expect("expands");
        // 2 approaches x 2 grid points x 2 seeds, duplicates collapsed.
        assert_eq!(points.len(), 8);
        let keys: Vec<&RunKey> = points.iter().map(|p| &p.key).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // Resolved params carry defaults alongside overrides.
        assert!(points[0].key.params.contains("horizon_ms=5"));

        let bad = SweepSpec {
            name: "unit".to_string(),
            axes: vec![SweepAxis {
                scenario: "no_such".to_string(),
                approaches: vec![Approach::Pq],
                grid: vec![],
                seeds: vec![1],
            }],
        };
        assert!(expand(&bad).is_err());
    }

    #[test]
    fn dir_names_are_unique_per_point() {
        let spec = SweepSpec {
            name: "unit".to_string(),
            axes: vec![tiny_axis()],
        };
        let points = expand(&spec).expect("expands");
        let mut dirs: Vec<String> = points.iter().map(|p| p.key.dir_name()).collect();
        dirs.sort();
        dirs.dedup();
        assert_eq!(dirs.len(), points.len());
    }

    #[test]
    fn execute_run_produces_the_canonical_metric_surface() {
        let spec = SweepSpec {
            name: "unit".to_string(),
            axes: vec![SweepAxis {
                scenario: "fairness_flows".to_string(),
                approaches: vec![Approach::Aq],
                grid: vec![Params::parse("b_flows=1,horizon_ms=5").expect("grid")],
                seeds: vec![7],
            }],
        };
        let points = expand(&spec).expect("expands");
        let metrics = execute_run(&points[0], None).expect("runs");
        for key in [
            "events",
            "jain_goodput",
            "goodput_e1_gbps",
            "goodput_e2_gbps",
            "goodput_total_gbps",
            "drops_e1",
            "drops_e2",
            "flows_completed_total",
        ] {
            assert!(metrics.contains_key(key), "missing metric `{key}`");
        }
        assert!(metrics["events"] > 0.0);
        assert!(metrics["goodput_total_gbps"] > 0.0);
    }

    #[test]
    fn tenant_churn_run_exposes_table_metrics_and_passes_its_trend_bounds() {
        let spec = SweepSpec {
            name: "unit".to_string(),
            axes: vec![SweepAxis {
                scenario: "tenant_churn".to_string(),
                approaches: vec![Approach::Aq],
                grid: vec![Params::parse("policy=0").expect("grid")],
                seeds: vec![1],
            }],
        };
        let points = expand(&spec).expect("expands");
        let metrics = execute_run(&points[0], None).expect("runs");
        for key in [
            "degraded_flows_total",
            "rejected_deploys_total",
            "evictions_total",
            "readmissions_total",
            "table_peak_bytes",
            "completion_frac",
            "reconverge_ms_max",
            "jain_goodput",
        ] {
            assert!(metrics.contains_key(key), "missing metric `{key}`");
        }
        // The default point holds the table just over budget: churn must
        // have produced rejected deploys, and the table peak must sit at
        // the 7-row budget.
        assert!(metrics["rejected_deploys_total"] > 0.0);
        assert_eq!(metrics["table_peak_bytes"], 7.0 * 15.0);
        // The same-point values the trend rules gate on; failures here
        // mean the DEFAULT_RULES bounds drifted from reality.
        assert!(
            metrics["jain_goodput"] >= 0.6,
            "jain {}",
            metrics["jain_goodput"]
        );
        assert_eq!(
            metrics["degraded_flows_total"], 0.0,
            "the default budget must only reject churned (idle) tenant \
             slots, never a grant that carries traffic"
        );
        assert!(
            metrics["completion_frac"] >= 0.5,
            "completion {}",
            metrics["completion_frac"]
        );
    }
}
