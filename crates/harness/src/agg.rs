//! Seed-ensemble aggregation and the `sweep.json` / `sweep.csv` artifact.
//!
//! Per configuration (scenario × approach × params) and per metric, the
//! seed ensemble collapses to `n / min / mean / max` plus a
//! normal-approximation 95% confidence half-width (`1.96·sd/√n`, sample
//! sd). Rendering iterates `BTreeMap`s and prints floats at fixed
//! precision, so the artifact bytes depend only on the run results —
//! never on `--jobs` or scheduling. Both renderings have parse
//! counterparts, and a sweep directory round-trips bit-exactly.

use crate::sweep::{FailureKind, RunFailure, RunKey};
use aq_bench::json::{self, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// One configuration of a sweep: every seed of a (scenario, approach,
/// params) triple lands in the same config.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConfigKey {
    /// Scenario name.
    pub scenario: String,
    /// Approach name, lowercase.
    pub approach: String,
    /// Canonical parameter string.
    pub params: String,
}

impl ConfigKey {
    /// The config a run key belongs to.
    pub fn of(run: &RunKey) -> ConfigKey {
        ConfigKey {
            scenario: run.scenario.clone(),
            approach: run.approach.clone(),
            params: run.params.clone(),
        }
    }
}

/// Seed-ensemble summary of one metric in one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Seeds contributing (a metric may be absent in some seeds, e.g.
    /// `completion_max_s` when one seed misses the deadline).
    pub n: u64,
    /// Smallest observation.
    pub min: f64,
    /// Ensemble mean.
    pub mean: f64,
    /// Largest observation.
    pub max: f64,
    /// Normal-approximation 95% CI half-width (0 when `n < 2`).
    pub ci95: f64,
}

impl Aggregate {
    /// Collapse one metric's per-seed observations.
    pub fn from_samples(samples: &[f64]) -> Option<Aggregate> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let ci95 = if samples.len() >= 2 {
            let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0);
            1.96 * var.sqrt() / n.sqrt()
        } else {
            0.0
        };
        Some(Aggregate {
            n: samples.len() as u64,
            min,
            mean,
            max,
            ci95,
        })
    }
}

/// A completed sweep: per-run metrics plus per-config aggregates.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Sweep name.
    pub name: String,
    /// Raw per-run metric maps, keyed deterministically.
    pub runs: BTreeMap<RunKey, BTreeMap<String, f64>>,
    /// Per-config, per-metric seed-ensemble summaries.
    pub configs: BTreeMap<ConfigKey, BTreeMap<String, Aggregate>>,
    /// Runs that errored, panicked, or timed out, with their kind and
    /// message. Recorded in `sweep.json` so a partially-failed sweep is a
    /// first-class, diffable artifact (and a gate failure).
    pub failures: BTreeMap<RunKey, RunFailure>,
}

impl Sweep {
    /// Attach per-run failures (from [`crate::sweep::SweepOutcome`]).
    pub fn with_failures(mut self, failures: BTreeMap<RunKey, RunFailure>) -> Sweep {
        self.failures = failures;
        self
    }

    /// Build a sweep from merged run results, computing all aggregates.
    pub fn from_runs(name: &str, runs: BTreeMap<RunKey, BTreeMap<String, f64>>) -> Sweep {
        let mut samples: BTreeMap<ConfigKey, BTreeMap<String, Vec<f64>>> = BTreeMap::new();
        for (key, metrics) in &runs {
            let per_metric = samples.entry(ConfigKey::of(key)).or_default();
            for (metric, value) in metrics {
                per_metric.entry(metric.clone()).or_default().push(*value);
            }
        }
        let configs = samples
            .into_iter()
            .map(|(config, metrics)| {
                let aggs = metrics
                    .into_iter()
                    .filter_map(|(m, vals)| Aggregate::from_samples(&vals).map(|a| (m, a)))
                    .collect();
                (config, aggs)
            })
            .collect();
        Sweep {
            name: name.to_string(),
            runs,
            configs,
            failures: BTreeMap::new(),
        }
    }

    /// Deterministic `sweep.json` bytes.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"sweep\": {},", json_escape(&self.name));
        out.push_str("  \"configs\": [\n");
        let n_configs = self.configs.len();
        for (ci, (config, metrics)) in self.configs.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(
                out,
                "      \"scenario\": {},",
                json_escape(&config.scenario)
            );
            let _ = writeln!(
                out,
                "      \"approach\": {},",
                json_escape(&config.approach)
            );
            let _ = writeln!(out, "      \"params\": {},", json_escape(&config.params));
            out.push_str("      \"metrics\": {\n");
            let n_metrics = metrics.len();
            for (mi, (metric, a)) in metrics.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {}: {{\"n\": {}, \"min\": {:.6}, \"mean\": {:.6}, \"max\": {:.6}, \"ci95\": {:.6}}}",
                    json_escape(metric),
                    a.n,
                    a.min,
                    a.mean,
                    a.max,
                    a.ci95
                );
                out.push_str(if mi + 1 < n_metrics { ",\n" } else { "\n" });
            }
            out.push_str("      }\n");
            out.push_str(if ci + 1 < n_configs {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"runs\": [\n");
        let n_runs = self.runs.len();
        for (ri, (key, metrics)) in self.runs.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"scenario\": {},", json_escape(&key.scenario));
            let _ = writeln!(out, "      \"approach\": {},", json_escape(&key.approach));
            let _ = writeln!(out, "      \"params\": {},", json_escape(&key.params));
            let _ = writeln!(out, "      \"seed\": {},", key.seed);
            out.push_str("      \"metrics\": {");
            let n_metrics = metrics.len();
            for (mi, (metric, value)) in metrics.iter().enumerate() {
                let _ = write!(out, "{}: {:.6}", json_escape(metric), value);
                if mi + 1 < n_metrics {
                    out.push_str(", ");
                }
            }
            out.push_str("}\n");
            out.push_str(if ri + 1 < n_runs {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"failures\": [\n");
        let n_failures = self.failures.len();
        for (fi, (key, failure)) in self.failures.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"scenario\": {},", json_escape(&key.scenario));
            let _ = writeln!(out, "      \"approach\": {},", json_escape(&key.approach));
            let _ = writeln!(out, "      \"params\": {},", json_escape(&key.params));
            let _ = writeln!(out, "      \"seed\": {},", key.seed);
            let _ = writeln!(
                out,
                "      \"kind\": {},",
                json_escape(failure.kind.as_str())
            );
            let _ = writeln!(out, "      \"error\": {}", json_escape(&failure.message));
            out.push_str(if fi + 1 < n_failures {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }

    /// Deterministic `sweep.csv` bytes: one row per (config, metric)
    /// aggregate.
    pub fn render_csv(&self) -> String {
        let mut out = String::from("scenario,approach,params,metric,n,min,mean,max,ci95\n");
        for (config, metrics) in &self.configs {
            for (metric, a) in metrics {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6}",
                    aq_bench::csv::quote(&config.scenario),
                    aq_bench::csv::quote(&config.approach),
                    aq_bench::csv::quote(&config.params),
                    aq_bench::csv::quote(metric),
                    a.n,
                    a.min,
                    a.mean,
                    a.max,
                    a.ci95
                );
            }
        }
        out
    }

    /// Write `sweep.json` + `sweep.csv` into `dir`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("sweep.json"), self.render_json())?;
        std::fs::write(dir.join("sweep.csv"), self.render_csv())?;
        Ok(())
    }

    /// Parse counterpart of [`Sweep::render_json`].
    pub fn parse_json(text: &str) -> Result<Sweep, String> {
        let doc = json::parse(text).map_err(|e| format!("sweep.json: {e}"))?;
        let name = jstr(&doc, "sweep")?;
        let mut configs = BTreeMap::new();
        for (i, c) in jarr(&doc, "configs")?.iter().enumerate() {
            let config = ConfigKey {
                scenario: jstr(c, "scenario").map_err(|e| format!("configs[{i}]: {e}"))?,
                approach: jstr(c, "approach").map_err(|e| format!("configs[{i}]: {e}"))?,
                params: jstr(c, "params").map_err(|e| format!("configs[{i}]: {e}"))?,
            };
            let mut metrics = BTreeMap::new();
            for (metric, a) in jobj(c, "metrics").map_err(|e| format!("configs[{i}]: {e}"))? {
                let agg = Aggregate {
                    n: jnum(a, "n")? as u64,
                    min: jnum(a, "min")?,
                    mean: jnum(a, "mean")?,
                    max: jnum(a, "max")?,
                    ci95: jnum(a, "ci95")?,
                };
                metrics.insert(metric.clone(), agg);
            }
            configs.insert(config, metrics);
        }
        let mut runs = BTreeMap::new();
        for (i, r) in jarr(&doc, "runs")?.iter().enumerate() {
            let key = RunKey {
                scenario: jstr(r, "scenario").map_err(|e| format!("runs[{i}]: {e}"))?,
                approach: jstr(r, "approach").map_err(|e| format!("runs[{i}]: {e}"))?,
                params: jstr(r, "params").map_err(|e| format!("runs[{i}]: {e}"))?,
                seed: r
                    .get("seed")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("runs[{i}]: missing numeric `seed`"))?,
            };
            let mut metrics = BTreeMap::new();
            for (metric, v) in jobj(r, "metrics").map_err(|e| format!("runs[{i}]: {e}"))? {
                let value = v
                    .as_f64()
                    .ok_or_else(|| format!("runs[{i}]: metric `{metric}` is not a number"))?;
                metrics.insert(metric.clone(), value);
            }
            runs.insert(key, metrics);
        }
        let mut failures = BTreeMap::new();
        // Absent in sweeps written before failure tracking existed.
        if let Some(list) = doc.get("failures").and_then(Json::as_arr) {
            for (i, f) in list.iter().enumerate() {
                let key = RunKey {
                    scenario: jstr(f, "scenario").map_err(|e| format!("failures[{i}]: {e}"))?,
                    approach: jstr(f, "approach").map_err(|e| format!("failures[{i}]: {e}"))?,
                    params: jstr(f, "params").map_err(|e| format!("failures[{i}]: {e}"))?,
                    seed: f
                        .get("seed")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("failures[{i}]: missing numeric `seed`"))?,
                };
                // Sweeps written before kinds existed carry only the
                // message; classify those as plain errors.
                let kind = match f.get("kind").and_then(Json::as_str) {
                    Some(s) => FailureKind::parse(s)
                        .ok_or_else(|| format!("failures[{i}]: unknown kind `{s}`"))?,
                    None => FailureKind::Error,
                };
                failures.insert(
                    key,
                    RunFailure {
                        kind,
                        message: jstr(f, "error").map_err(|e| format!("failures[{i}]: {e}"))?,
                    },
                );
            }
        }
        Ok(Sweep {
            name,
            runs,
            configs,
            failures,
        })
    }

    /// Parse counterpart of [`Sweep::render_csv`] — returns the aggregate
    /// rows (the CSV carries no per-run data).
    pub fn parse_csv(
        text: &str,
    ) -> Result<BTreeMap<ConfigKey, BTreeMap<String, Aggregate>>, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("sweep.csv: empty file")?;
        if header != "scenario,approach,params,metric,n,min,mean,max,ci95" {
            return Err(format!("sweep.csv: unexpected header `{header}`"));
        }
        let mut configs: BTreeMap<ConfigKey, BTreeMap<String, Aggregate>> = BTreeMap::new();
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            // RFC-4180 rows quote the params field (it contains commas) and
            // split to exactly 9 fields. Legacy rows (written before
            // quoting) left params bare, so an unquoted row with > 9
            // comma-split pieces re-joins everything between the two
            // leading and six trailing fields as params.
            let fields: Vec<String> = aq_bench::csv::split_record(line)
                .map_err(|e| format!("sweep.csv line {}: {e}", lineno + 2))?;
            if fields.len() < 9 {
                return Err(format!(
                    "sweep.csv line {}: expected >= 9 fields, got {}",
                    lineno + 2,
                    fields.len()
                ));
            }
            let num = |s: &str, what: &str| -> Result<f64, String> {
                s.parse::<f64>()
                    .map_err(|_| format!("sweep.csv line {}: bad {what} `{s}`", lineno + 2))
            };
            let tail = &fields[fields.len() - 6..];
            let config = ConfigKey {
                scenario: fields[0].to_string(),
                approach: fields[1].to_string(),
                params: fields[2..fields.len() - 6].join(","),
            };
            let agg = Aggregate {
                n: num(&tail[1], "n")? as u64,
                min: num(&tail[2], "min")?,
                mean: num(&tail[3], "mean")?,
                max: num(&tail[4], "max")?,
                ci95: num(&tail[5], "ci95")?,
            };
            configs
                .entry(config)
                .or_default()
                .insert(tail[0].to_string(), agg);
        }
        Ok(configs)
    }

    /// Load a sweep from a directory containing `sweep.json` (as written
    /// by [`Sweep::write_to`]), cross-checking `sweep.csv` when present.
    pub fn load_dir(dir: &Path) -> Result<Sweep, String> {
        let json_path = dir.join("sweep.json");
        let text = std::fs::read_to_string(&json_path)
            .map_err(|e| format!("{}: {e}", json_path.display()))?;
        let sweep = Sweep::parse_json(&text)?;
        let csv_path = dir.join("sweep.csv");
        if let Ok(csv_text) = std::fs::read_to_string(&csv_path) {
            let csv_configs = Sweep::parse_csv(&csv_text)?;
            let json_keys: Vec<&ConfigKey> = sweep.configs.keys().collect();
            let csv_keys: Vec<&ConfigKey> = csv_configs.keys().collect();
            if json_keys != csv_keys {
                return Err(format!(
                    "{}: config set disagrees with sweep.json",
                    csv_path.display()
                ));
            }
        }
        Ok(sweep)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn jstr(j: &Json, key: &str) -> Result<String, String> {
    j.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string `{key}`"))
}

fn jnum(j: &Json, key: &str) -> Result<f64, String> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number `{key}`"))
}

fn jarr<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], String> {
    j.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing array `{key}`"))
}

fn jobj<'a>(j: &'a Json, key: &str) -> Result<&'a [(String, Json)], String> {
    j.get(key)
        .and_then(Json::as_obj)
        .ok_or_else(|| format!("missing object `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sweep() -> Sweep {
        let mut runs = BTreeMap::new();
        for seed in [1u64, 2, 3] {
            let key = RunKey {
                scenario: "fairness_flows".to_string(),
                approach: "aq".to_string(),
                params: "b_flows=1,horizon_ms=5".to_string(),
                seed,
            };
            let mut m = BTreeMap::new();
            m.insert("jain_goodput".to_string(), 0.9 + 0.01 * seed as f64);
            m.insert("events".to_string(), 1000.0 * seed as f64);
            runs.insert(key, m);
        }
        Sweep::from_runs("unit", runs)
    }

    #[test]
    fn aggregate_math_matches_hand_computation() {
        let a = Aggregate::from_samples(&[1.0, 2.0, 3.0]).expect("non-empty");
        assert_eq!(a.n, 3);
        assert!((a.mean - 2.0).abs() < 1e-12);
        assert!((a.min - 1.0).abs() < 1e-12);
        assert!((a.max - 3.0).abs() < 1e-12);
        // sample sd = 1, ci95 = 1.96/sqrt(3)
        assert!((a.ci95 - 1.96 / 3f64.sqrt()).abs() < 1e-9);

        let single = Aggregate::from_samples(&[5.0]).expect("non-empty");
        assert_eq!(single.n, 1);
        assert!((single.ci95).abs() < 1e-12);
        assert!(Aggregate::from_samples(&[]).is_none());
    }

    #[test]
    fn json_round_trip_reproduces_bytes() {
        let sweep = sample_sweep();
        let rendered = sweep.render_json();
        let parsed = Sweep::parse_json(&rendered).expect("parses");
        assert_eq!(parsed.render_json(), rendered);
        assert_eq!(parsed.runs.len(), 3);
        assert_eq!(parsed.configs.len(), 1);
    }

    #[test]
    fn csv_round_trip_agrees_with_configs() {
        let sweep = sample_sweep();
        let parsed = Sweep::parse_csv(&sweep.render_csv()).expect("parses");
        assert_eq!(parsed.len(), sweep.configs.len());
        let (config, metrics) = parsed.iter().next().expect("one config");
        assert_eq!(config.scenario, "fairness_flows");
        assert!(metrics.contains_key("jain_goodput"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Sweep::parse_json("{").is_err());
        assert!(Sweep::parse_json("{\"sweep\": \"x\"}").is_err());
        assert!(Sweep::parse_csv("bogus,header\n").is_err());
    }

    #[test]
    fn failures_round_trip_through_json_with_distinct_kinds() {
        let key_of = |seed: u64| RunKey {
            scenario: "fairness_flows".to_string(),
            approach: "aq".to_string(),
            params: "b_flows=9,horizon_ms=5".to_string(),
            seed,
        };
        let sweep = sample_sweep().with_failures(BTreeMap::from([
            (
                key_of(8),
                RunFailure {
                    kind: FailureKind::Panic,
                    message: "boom".to_string(),
                },
            ),
            (
                key_of(9),
                RunFailure {
                    kind: FailureKind::Timeout,
                    message: "run exceeded the 600s wall-clock budget".to_string(),
                },
            ),
        ]));
        let rendered = sweep.render_json();
        let parsed = Sweep::parse_json(&rendered).expect("parses");
        assert_eq!(parsed.failures.len(), 2);
        assert_eq!(parsed.failures[&key_of(8)].kind, FailureKind::Panic);
        assert_eq!(parsed.failures[&key_of(8)].message, "boom");
        assert_eq!(parsed.failures[&key_of(9)].kind, FailureKind::Timeout);
        assert_eq!(parsed.render_json(), rendered);
    }

    #[test]
    fn json_without_failures_key_still_parses() {
        // Sweeps written before failure tracking carry no `failures` key.
        let legacy = "{\"sweep\": \"old\", \"configs\": [], \"runs\": []}";
        let parsed = Sweep::parse_json(legacy).expect("legacy artifact parses");
        assert!(parsed.failures.is_empty());
    }

    #[test]
    fn failures_without_a_kind_default_to_error() {
        // Sweeps written before kind classification carry only `error`.
        let legacy = "{\"sweep\": \"old\", \"configs\": [], \"runs\": [], \
                      \"failures\": [{\"scenario\": \"s\", \"approach\": \"aq\", \
                      \"params\": \"a=1\", \"seed\": 2, \"error\": \"boom\"}]}";
        let parsed = Sweep::parse_json(legacy).expect("legacy artifact parses");
        let failure = parsed.failures.values().next().expect("one failure");
        assert_eq!(failure.kind, FailureKind::Error);
        assert_eq!(failure.message, "boom");
        assert!(Sweep::parse_json(&legacy.replace(
            "\"error\": \"boom\"",
            "\"kind\": \"bogus\", \"error\": \"boom\""
        ))
        .is_err());
    }

    #[test]
    fn csv_quotes_params_and_still_reads_legacy_bare_rows() {
        let sweep = sample_sweep();
        let csv = sweep.render_csv();
        assert!(
            csv.contains("\"b_flows=1,horizon_ms=5\""),
            "comma-bearing params must be quoted: {csv}"
        );
        // Legacy rows (pre-quoting) split params across bare commas; the
        // >= 9-field re-join fallback must still assemble them.
        let legacy = "scenario,approach,params,metric,n,min,mean,max,ci95\n\
                      fairness_flows,aq,a=1,b=2,jain_goodput,3,0.9,0.91,0.92,0.01\n";
        let parsed = Sweep::parse_csv(legacy).expect("legacy row parses");
        let config = parsed.keys().next().expect("one config");
        assert_eq!(config.params, "a=1,b=2");
    }
}
