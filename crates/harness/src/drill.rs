//! Per-run drill-down: tracing an aggregate gate violation to the exact
//! report fields that moved.
//!
//! `aq-sweep diff` compares seed-aggregated metrics; when that gate fires
//! the next question is always *which run, which row, which counter*. Both
//! sweep directories carry every run's full `report.json` under `runs/`,
//! so the drill-down loads the run pairs both sides share and compares
//! them field by field — entity rows by entity id, port rows by
//! `(node, port)`, AQ rows by `(tag, position)`, scalar metrics by key,
//! and windowed series bucket by bucket (first differing bucket only, to
//! keep the table readable). Numeric fields reuse the same [`Tolerances`]
//! as the aggregate gate — including the absolute-slack floor, so a 0 → 1
//! drop count is noise here exactly as it is there.

use crate::diff::Tolerances;
use aq_bench::report::{RunReport, Section};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::Path;

/// One field-level difference between a baseline and a current run report.
#[derive(Debug, Clone)]
pub struct FieldDiff {
    /// Run directory name (the [`RunKey`] dir form).
    ///
    /// [`RunKey`]: crate::sweep::RunKey
    pub run: String,
    /// Section label inside the report.
    pub section: String,
    /// Row identity (`entity 1`, `port 0/4`, `aq 3/ingress`, `metric k`),
    /// empty for section scalars.
    pub row: String,
    /// Field name — also the tolerance lookup key.
    pub field: String,
    /// Baseline value, formatted ("absent" for a missing row/field).
    pub baseline: String,
    /// Current value, formatted.
    pub current: String,
}

fn list_runs(dir: &Path) -> BTreeSet<String> {
    let Ok(entries) = std::fs::read_dir(dir.join("runs")) else {
        return BTreeSet::new();
    };
    entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect()
}

/// Whether a sweep directory carries per-run reports to drill into.
pub fn has_runs(dir: &Path) -> bool {
    dir.join("runs").is_dir()
}

/// Compare every run report present in *both* sweep directories. Runs
/// present on only one side are skipped — the aggregate gate already
/// reports config drift. Returns the field diffs plus the number of run
/// pairs compared.
pub fn drill_down(
    baseline_dir: &Path,
    current_dir: &Path,
    tol: &Tolerances,
) -> Result<(Vec<FieldDiff>, usize), String> {
    let base_runs = list_runs(baseline_dir);
    let cur_runs = list_runs(current_dir);
    let shared: Vec<&String> = base_runs.intersection(&cur_runs).collect();
    let mut diffs = Vec::new();
    for run in &shared {
        let load = |dir: &Path| -> Result<RunReport, String> {
            let path = dir.join("runs").join(run).join("report.json");
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            RunReport::parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))
        };
        let base = load(baseline_dir)?;
        let cur = load(current_dir)?;
        diffs.extend(diff_reports(run, &base, &cur, tol));
    }
    Ok((diffs, shared.len()))
}

/// Field-by-field comparison of two parsed run reports.
pub fn diff_reports(
    run: &str,
    baseline: &RunReport,
    current: &RunReport,
    tol: &Tolerances,
) -> Vec<FieldDiff> {
    let mut out = Vec::new();
    for bs in baseline.sections() {
        match current.sections().iter().find(|s| s.label == bs.label) {
            Some(cs) => diff_sections(run, bs, cs, tol, &mut out),
            None => out.push(FieldDiff {
                run: run.to_string(),
                section: bs.label.clone(),
                row: String::new(),
                field: "<section>".to_string(),
                baseline: "present".to_string(),
                current: "absent".to_string(),
            }),
        }
    }
    for cs in current.sections() {
        if !baseline.sections().iter().any(|s| s.label == cs.label) {
            out.push(FieldDiff {
                run: run.to_string(),
                section: cs.label.clone(),
                row: String::new(),
                field: "<section>".to_string(),
                baseline: "absent".to_string(),
                current: "present".to_string(),
            });
        }
    }
    out
}

fn f6(v: f64) -> String {
    format!("{v:.6}")
}

fn diff_sections(run: &str, b: &Section, c: &Section, tol: &Tolerances, out: &mut Vec<FieldDiff>) {
    let mut push = |row: &str, field: &str, baseline: String, current: String| {
        out.push(FieldDiff {
            run: run.to_string(),
            section: b.label.clone(),
            row: row.to_string(),
            field: field.to_string(),
            baseline,
            current,
        });
    };
    macro_rules! num {
        ($row:expr, $field:expr, $b:expr, $c:expr) => {
            if tol.violates($field, $b as f64, $c as f64) {
                push($row, $field, f6($b as f64), f6($c as f64));
            }
        };
    }
    macro_rules! opt {
        ($row:expr, $field:expr, $b:expr, $c:expr) => {
            match ($b, $c) {
                (None, None) => {}
                (Some(bv), Some(cv)) => num!($row, $field, bv as f64, cv as f64),
                (bv, cv) => push(
                    $row,
                    $field,
                    bv.map(|v| f6(v as f64)).unwrap_or_else(|| "absent".into()),
                    cv.map(|v| f6(v as f64)).unwrap_or_else(|| "absent".into()),
                ),
            }
        };
    }
    // First differing bucket only: series regressions are almost always a
    // shift from one point onward, and one coordinate names it.
    macro_rules! series {
        ($row:expr, $field:expr, $b:expr, $c:expr) => {
            if $b.len() != $c.len() {
                push(
                    $row,
                    concat!($field, ".len"),
                    $b.len().to_string(),
                    $c.len().to_string(),
                );
            } else if let Some(i) =
                (0..$b.len()).find(|&i| tol.violates($field, $b[i] as f64, $c[i] as f64))
            {
                push(
                    $row,
                    &format!(concat!($field, "[{}]"), i),
                    f6($b[i] as f64),
                    f6($c[i] as f64),
                );
            }
        };
    }

    if b.now_ns != c.now_ns {
        push("", "now_ns", b.now_ns.to_string(), c.now_ns.to_string());
    }
    num!("", "events", b.events, c.events);
    num!("", "jain_goodput", b.jain_goodput, c.jain_goodput);

    for be in &b.entities {
        let row = format!("entity {}", be.entity);
        let Some(ce) = c.entities.iter().find(|e| e.entity == be.entity) else {
            push(&row, "<row>", "present".into(), "absent".into());
            continue;
        };
        num!(&row, "rx_bytes", be.rx_bytes, ce.rx_bytes);
        num!(&row, "goodput_gbps", be.goodput_gbps, ce.goodput_gbps);
        num!(&row, "drops", be.drops, ce.drops);
        opt!(&row, "pq_p50_ns", be.pq_p50_ns, ce.pq_p50_ns);
        opt!(&row, "pq_p99_ns", be.pq_p99_ns, ce.pq_p99_ns);
        opt!(&row, "vq_p50_ns", be.vq_p50_ns, ce.vq_p50_ns);
        opt!(&row, "vq_p99_ns", be.vq_p99_ns, ce.vq_p99_ns);
        num!(&row, "flows", be.flows, ce.flows);
        num!(
            &row,
            "flows_completed",
            be.flows_completed,
            ce.flows_completed
        );
        opt!(&row, "completion_s", be.completion_s, ce.completion_s);
        series!(
            &row,
            "rate_series_bps",
            be.rate_series_bps,
            ce.rate_series_bps
        );
    }
    for ce in &c.entities {
        if !b.entities.iter().any(|e| e.entity == ce.entity) {
            let row = format!("entity {}", ce.entity);
            push(&row, "<row>", "absent".into(), "present".into());
        }
    }

    for bp in &b.ports {
        let row = format!("port {}/{}", bp.node, bp.port);
        let Some(cp) = c
            .ports
            .iter()
            .find(|p| p.node == bp.node && p.port == bp.port)
        else {
            push(&row, "<row>", "present".into(), "absent".into());
            continue;
        };
        num!(&row, "enqueued_bytes", bp.enqueued_bytes, cp.enqueued_bytes);
        num!(&row, "dequeued_bytes", bp.dequeued_bytes, cp.dequeued_bytes);
        num!(&row, "dropped_bytes", bp.dropped_bytes, cp.dropped_bytes);
        num!(&row, "resident_bytes", bp.resident_bytes, cp.resident_bytes);
        if bp.conserves != cp.conserves {
            push(
                &row,
                "conserves",
                bp.conserves.to_string(),
                cp.conserves.to_string(),
            );
        }
        num!(&row, "taildrops", bp.taildrops, cp.taildrops);
        num!(&row, "red_drops", bp.red_drops, cp.red_drops);
        num!(&row, "shaper_drops", bp.shaper_drops, cp.shaper_drops);
        num!(&row, "aq_drops", bp.aq_drops, cp.aq_drops);
        num!(&row, "ecn_marks", bp.ecn_marks, cp.ecn_marks);
        num!(&row, "tx_pkts", bp.tx_pkts, cp.tx_pkts);
        num!(&row, "tx_bytes", bp.tx_bytes, cp.tx_bytes);
        num!(
            &row,
            "peak_occupancy_bytes",
            bp.peak_occupancy_bytes,
            cp.peak_occupancy_bytes
        );
        series!(&row, "occupancy", bp.occupancy, cp.occupancy);
    }
    for cp in &c.ports {
        if !b
            .ports
            .iter()
            .any(|p| p.node == cp.node && p.port == cp.port)
        {
            let row = format!("port {}/{}", cp.node, cp.port);
            push(&row, "<row>", "absent".into(), "present".into());
        }
    }

    for ba in &b.aqs {
        let row = format!("aq {}/{}", ba.tag, ba.position);
        let Some(ca) = c
            .aqs
            .iter()
            .find(|a| a.tag == ba.tag && a.position == ba.position)
        else {
            push(&row, "<row>", "present".into(), "absent".into());
            continue;
        };
        num!(&row, "rate_bps", ba.rate_bps, ca.rate_bps);
        num!(&row, "limit_bytes", ba.limit_bytes, ca.limit_bytes);
        num!(&row, "arrived_bytes", ba.arrived_bytes, ca.arrived_bytes);
        num!(&row, "limit_drops", ba.limit_drops, ca.limit_drops);
        num!(&row, "marks", ba.marks, ca.marks);
        num!(&row, "gap_samples", ba.gap_samples, ca.gap_samples);
        num!(&row, "max_gap_bytes", ba.max_gap_bytes, ca.max_gap_bytes);
        num!(&row, "mean_gap_bytes", ba.mean_gap_bytes, ca.mean_gap_bytes);
    }
    for ca in &c.aqs {
        if !b
            .aqs
            .iter()
            .any(|a| a.tag == ca.tag && a.position == ca.position)
        {
            let row = format!("aq {}/{}", ca.tag, ca.position);
            push(&row, "<row>", "absent".into(), "present".into());
        }
    }

    for (k, bv) in &b.metrics {
        let row = format!("metric {k}");
        match c.metrics.iter().find(|(ck, _)| ck == k) {
            Some((_, cv)) => num!(&row, k.as_str(), *bv, *cv),
            None => push(&row, "<row>", f6(*bv), "absent".into()),
        }
    }
    for (k, cv) in &c.metrics {
        if !b.metrics.iter().any(|(bk, _)| bk == k) {
            let row = format!("metric {k}");
            push(&row, "<row>", "absent".into(), f6(*cv));
        }
    }
}

/// Render field diffs as the drill-down's human-readable table.
pub fn render_field_diffs(diffs: &[FieldDiff]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} per-run field difference(s):", diffs.len());
    let _ = writeln!(
        out,
        "{:<52} {:<28} {:<14} {:<22} {:>16} {:>16}",
        "run", "section", "row", "field", "baseline", "current"
    );
    for d in diffs {
        let _ = writeln!(
            out,
            "{:<52} {:<28} {:<14} {:<22} {:>16} {:>16}",
            d.run, d.section, d.row, d.field, d.baseline, d.current
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_netsim::ids::{EntityId, FlowId, NodeId, PortId};
    use aq_netsim::stats::StatsHub;
    use aq_netsim::time::Time;

    /// A hub with one entity, one flow, one port — `delivered` scales the
    /// payload so reports built from different values genuinely differ.
    fn hub(delivered: u64, drops: u64) -> StatsHub {
        let mut h = StatsHub::new();
        h.on_delivery(Time::from_millis(2), EntityId(1), delivered, 500, 100);
        for _ in 0..drops {
            h.on_drop(EntityId(1));
        }
        h.register_flow(FlowId(1), EntityId(1), delivered, Time::ZERO);
        h.flow_completed(FlowId(1), Time::from_millis(2));
        h.on_port_enqueue(Time::from_millis(1), NodeId(0), PortId(4), 1000, 1000, 0);
        h.on_port_dequeue(Time::from_millis(2), NodeId(0), PortId(4), 1000, 0);
        h.on_port_tx(NodeId(0), PortId(4), 1000);
        h
    }

    fn report(delivered: u64, drops: u64) -> RunReport {
        let mut r = RunReport::new("unit");
        r.capture_hub("run", Time::from_millis(10), 42, &hub(delivered, drops));
        r
    }

    #[test]
    fn identical_reports_produce_no_field_diffs() {
        let a = report(3000, 0);
        assert!(diff_reports("r", &a, &a, &Tolerances::default()).is_empty());
    }

    #[test]
    fn a_moved_counter_is_named_with_its_row_and_field() {
        let base = report(3000, 0);
        let cur = report(30_000, 0);
        let diffs = diff_reports("r", &base, &cur, &Tolerances::default());
        assert!(
            diffs
                .iter()
                .any(|d| d.row == "entity 1" && d.field == "rx_bytes"),
            "10x rx_bytes must surface as entity 1 / rx_bytes, got: {diffs:?}"
        );
        assert!(
            diffs
                .iter()
                .any(|d| d.row == "entity 1" && d.field.starts_with("rate_series_bps[")),
            "the moved series bucket must be named, got: {diffs:?}"
        );
        let table = render_field_diffs(&diffs);
        assert!(table.contains("rx_bytes"));
        assert!(table.contains("entity 1"));
    }

    #[test]
    fn a_zero_to_one_drop_is_inside_the_slack_floor() {
        let base = report(3000, 0);
        let cur = report(3000, 1);
        let diffs = diff_reports("r", &base, &cur, &Tolerances::default());
        assert!(
            diffs.is_empty(),
            "one extra drop is noise under the 2-packet slack, got: {diffs:?}"
        );
        // Past the slack it is a real difference again.
        let worse = report(3000, 5);
        let diffs = diff_reports("r", &base, &worse, &Tolerances::default());
        assert!(diffs
            .iter()
            .any(|d| d.row == "entity 1" && d.field == "drops"));
    }

    #[test]
    fn a_missing_section_is_structural() {
        let base = report(3000, 0);
        let empty = RunReport::new("unit");
        let diffs = diff_reports("r", &base, &empty, &Tolerances::default());
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].field, "<section>");
        assert_eq!(diffs[0].current, "absent");
    }
}
