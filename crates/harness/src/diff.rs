//! The regression gate: structural + numeric comparison of two sweeps.
//!
//! `aq-sweep diff <baseline> <current>` loads both sweep directories,
//! checks that they describe the same configuration set and metric
//! surface, then compares every aggregate under per-metric **relative**
//! tolerances. Counting metrics with inherent seed-level jitter (drops,
//! events) get loose bounds; fairness and goodput get tight ones. Any
//! violation renders into a readable table and flips the exit code.

use crate::agg::{Aggregate, ConfigKey, Sweep};
use std::fmt::Write as _;

/// Per-metric relative tolerances, matched by metric-name prefix, plus an
/// absolute-slack floor for count metrics: a purely relative gate turns a
/// 0 → 1 taildrop in one seed into rel Δ = 1.0 and a false alarm, so small
/// integer metrics additionally pass whenever `|a − b|` is at or below the
/// metric's absolute slack, regardless of the ratio.
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// `(prefix, relative tolerance)` pairs, first match wins.
    pub by_prefix: Vec<(String, f64)>,
    /// Fallback when no prefix matches.
    pub default: f64,
    /// `(prefix, absolute slack)` pairs, first match wins; deltas with
    /// `|a − b| <= slack` never violate. Metrics without a matching prefix
    /// get zero slack (purely relative, as before).
    pub abs_slack: Vec<(String, f64)>,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            by_prefix: vec![
                // Drop counts are the most seed-sensitive observable.
                ("drops".to_string(), 0.25),
                // Event counts shift with retransmission schedules.
                ("events".to_string(), 0.05),
                ("jain".to_string(), 0.05),
                ("completion".to_string(), 0.05),
                ("goodput".to_string(), 0.05),
                ("flows_completed".to_string(), 0.02),
            ],
            default: 0.02,
            // Count metrics whose near-zero values make relative deltas
            // meaningless: a couple of packets either way is noise.
            abs_slack: vec![
                ("drops".to_string(), 2.0),
                ("taildrops".to_string(), 2.0),
                ("red_drops".to_string(), 2.0),
                ("shaper_drops".to_string(), 2.0),
                ("aq_drops".to_string(), 2.0),
                ("limit_drops".to_string(), 2.0),
                ("ecn_marks".to_string(), 2.0),
                ("marks".to_string(), 2.0),
                ("flows_completed".to_string(), 1.0),
            ],
        }
    }
}

impl Tolerances {
    /// The relative tolerance applied to `metric`.
    pub fn for_metric(&self, metric: &str) -> f64 {
        self.by_prefix
            .iter()
            .find(|(prefix, _)| metric.starts_with(prefix.as_str()))
            .map(|(_, tol)| *tol)
            .unwrap_or(self.default)
    }

    /// The absolute slack applied to `metric` (0 when no prefix matches).
    pub fn slack_for_metric(&self, metric: &str) -> f64 {
        self.abs_slack
            .iter()
            .find(|(prefix, _)| metric.starts_with(prefix.as_str()))
            .map(|(_, slack)| *slack)
            .unwrap_or(0.0)
    }

    /// Whether `baseline → current` violates this metric's tolerance:
    /// the relative delta must exceed the budget AND the absolute delta
    /// must exceed the metric's slack floor.
    pub fn violates(&self, metric: &str, baseline: f64, current: f64) -> bool {
        rel_delta(baseline, current) > self.for_metric(metric)
            && (baseline - current).abs() > self.slack_for_metric(metric)
    }
}

/// Relative distance between two observations; 0 when both are ~zero.
pub fn rel_delta(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom < 1e-9 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

/// One gate violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which config (empty params/approach for structural violations).
    pub config: ConfigKey,
    /// Which metric (or a structural description).
    pub metric: String,
    /// Human-readable explanation with both values.
    pub detail: String,
}

/// Compare `current` against `baseline`. Returns every violation, most
/// fundamental (structural) first.
pub fn diff_sweeps(baseline: &Sweep, current: &Sweep, tol: &Tolerances) -> Vec<Violation> {
    let mut violations = Vec::new();
    let structural = |config: &ConfigKey, what: String| Violation {
        config: config.clone(),
        metric: "<structure>".to_string(),
        detail: what,
    };
    // A failed run in the current sweep is always a gate failure, whatever
    // the aggregates look like without it.
    for (key, error) in &current.failures {
        violations.push(Violation {
            config: ConfigKey::of(key),
            metric: "<failure>".to_string(),
            detail: format!("run seed={} failed: {error}", key.seed),
        });
    }
    for config in baseline.configs.keys() {
        if !current.configs.contains_key(config) {
            violations.push(structural(
                config,
                "config missing from current sweep".into(),
            ));
        }
    }
    for config in current.configs.keys() {
        if !baseline.configs.contains_key(config) {
            violations.push(structural(config, "config absent from baseline".into()));
        }
    }
    for (config, base_metrics) in &baseline.configs {
        let Some(cur_metrics) = current.configs.get(config) else {
            continue;
        };
        for (metric, base) in base_metrics {
            let Some(cur) = cur_metrics.get(metric) else {
                violations.push(Violation {
                    config: config.clone(),
                    metric: metric.clone(),
                    detail: "metric missing from current sweep".to_string(),
                });
                continue;
            };
            violations.extend(compare_aggregate(config, metric, base, cur, tol));
        }
        for metric in cur_metrics.keys() {
            if !base_metrics.contains_key(metric) {
                violations.push(Violation {
                    config: config.clone(),
                    metric: metric.clone(),
                    detail: "metric absent from baseline".to_string(),
                });
            }
        }
    }
    violations
}

fn compare_aggregate(
    config: &ConfigKey,
    metric: &str,
    base: &Aggregate,
    cur: &Aggregate,
    tol: &Tolerances,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if base.n != cur.n {
        out.push(Violation {
            config: config.clone(),
            metric: metric.to_string(),
            detail: format!(
                "seed count changed: baseline n={}, current n={}",
                base.n, cur.n
            ),
        });
    }
    let allowed = tol.for_metric(metric);
    let slack = tol.slack_for_metric(metric);
    for (field, b, c) in [
        ("mean", base.mean, cur.mean),
        ("min", base.min, cur.min),
        ("max", base.max, cur.max),
    ] {
        if tol.violates(metric, b, c) {
            out.push(Violation {
                config: config.clone(),
                metric: metric.to_string(),
                detail: format!(
                    "{field}: baseline {b:.6}, current {c:.6} (rel Δ {:.4} > tol {:.4}, abs Δ {:.4} > slack {:.4})",
                    rel_delta(b, c),
                    allowed,
                    (b - c).abs(),
                    slack
                ),
            });
        }
    }
    out
}

/// Render violations as the gate's human-readable table.
pub fn render_violations(violations: &[Violation]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} violation(s):", violations.len());
    let _ = writeln!(out, "{:<60} {:<24} detail", "config", "metric");
    for v in violations {
        let config = format!(
            "{}/{}/{}",
            v.config.scenario, v.config.approach, v.config.params
        );
        let _ = writeln!(out, "{:<60} {:<24} {}", config, v.metric, v.detail);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::RunKey;
    use std::collections::BTreeMap;

    fn sweep_with(jain: f64, drops: f64) -> Sweep {
        let mut runs = BTreeMap::new();
        for seed in [1u64, 2] {
            let key = RunKey {
                scenario: "s".to_string(),
                approach: "aq".to_string(),
                params: "x=1".to_string(),
                seed,
            };
            let mut m = BTreeMap::new();
            m.insert("jain_goodput".to_string(), jain);
            m.insert("drops_e1".to_string(), drops);
            runs.insert(key, m);
        }
        Sweep::from_runs("unit", runs)
    }

    #[test]
    fn identical_sweeps_pass() {
        let a = sweep_with(0.95, 100.0);
        assert!(diff_sweeps(&a, &a, &Tolerances::default()).is_empty());
    }

    #[test]
    fn loose_metrics_absorb_jitter_that_tight_metrics_flag() {
        let base = sweep_with(0.95, 100.0);
        // 20% drop delta is inside drops' 25% budget; jain is untouched.
        let ok = sweep_with(0.95, 120.0);
        assert!(diff_sweeps(&base, &ok, &Tolerances::default()).is_empty());
        // A 20% jain delta blows the 5% budget on mean/min/max.
        let bad = sweep_with(0.76, 100.0);
        let violations = diff_sweeps(&base, &bad, &Tolerances::default());
        assert_eq!(violations.len(), 3);
        assert!(violations.iter().all(|v| v.metric == "jain_goodput"));
        let table = render_violations(&violations);
        assert!(table.contains("jain_goodput"));
        assert!(table.contains("3 violation(s)"));
    }

    #[test]
    fn structural_drift_is_reported() {
        let base = sweep_with(0.95, 100.0);
        let mut cur = base.clone();
        let config = base.configs.keys().next().expect("one config").clone();
        cur.configs
            .get_mut(&config)
            .expect("config")
            .remove("jain_goodput");
        let violations = diff_sweeps(&base, &cur, &Tolerances::default());
        assert!(violations
            .iter()
            .any(|v| v.detail.contains("missing from current")));
    }

    #[test]
    fn rel_delta_handles_zeros() {
        assert!(rel_delta(0.0, 0.0).abs() < 1e-12);
        assert!((rel_delta(0.0, 2.0) - 1.0).abs() < 1e-12);
        assert!((rel_delta(100.0, 110.0) - 10.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn absolute_slack_floors_near_zero_count_metrics() {
        let tol = Tolerances::default();
        // 0 ↔ 0: never a violation.
        assert!(!tol.violates("drops_e1", 0.0, 0.0));
        // 0 → 1 drop: rel Δ = 1.0 blows the 25% budget, but the absolute
        // delta is within the 2-packet slack — the gate must stay quiet.
        assert!(!tol.violates("drops_e1", 0.0, 1.0));
        assert!(!tol.violates("taildrops", 1.0, 0.0));
        assert!(!tol.violates("ecn_marks", 2.0, 0.0));
        assert!(!tol.violates("flows_completed_total", 8.0, 9.0));
        // Just past the slack AND past the relative budget: violation.
        assert!(tol.violates("drops_e1", 0.0, 3.0));
        // Large counts: slack is negligible, the relative budget governs.
        assert!(!tol.violates("drops_e1", 1000.0, 1200.0)); // 20% < 25%
        assert!(tol.violates("drops_e1", 1000.0, 1500.0)); // 33% > 25%
                                                           // Metrics with no slack prefix remain purely relative.
        assert!(tol.violates("jain_goodput", 0.0, 0.1));
        assert_eq!(tol.slack_for_metric("jain_goodput"), 0.0);
    }

    #[test]
    fn zero_to_one_drop_passes_the_full_diff() {
        let base = sweep_with(0.95, 0.0);
        let cur = sweep_with(0.95, 1.0);
        assert!(
            diff_sweeps(&base, &cur, &Tolerances::default()).is_empty(),
            "a single extra drop must not fail the gate"
        );
    }
}
