//! Runtime invariant oracle over [`RunReport`] artifacts.
//!
//! The trend rules (crates/harness/src/trends.rs) assert *qualitative*
//! expectations — AQ fairer than PQ, recovery after faults. The oracle
//! asserts *conservation-style* invariants that must hold on every run of
//! every scenario, chaotic or not: no amount of churn, faults, or budget
//! pressure is allowed to break them. The soak harness (`aq-sweep soak`)
//! evaluates the oracle against every run report it produces; any
//! violation fails the soak.
//!
//! Checked per section:
//!
//! * **Byte conservation** — every port's `enqueued == dequeued + dropped
//!   + resident` held at capture time (the report's `conserves` bit).
//! * **Pool bounds** — shared-buffer occupancy and its peak never exceed
//!   the pool capacity.
//! * **Gap sanity** — A-Gap statistics are non-negative and the mean
//!   never exceeds the max.
//! * **Table bounds** — a budgeted AQ table's occupancy and peak never
//!   exceed the register budget, and degradation accounting is
//!   self-consistent (degraded packets imply degraded flows and bytes).
//! * **Degraded progress** — when any flow degraded to physical-queue
//!   behavior, traffic still moved end to end (degradation is graceful,
//!   not a blackout).
//! * **Liveness** — simulation sections processed events and fairness
//!   indices are well-formed.

use aq_bench::report::{RunReport, Section};

/// Evaluate every invariant against every section of a report. Returns
/// human-readable violations; empty means the report is clean.
pub fn check_report(report: &RunReport) -> Vec<String> {
    let mut violations = Vec::new();
    for section in report.sections() {
        check_section(report.name(), section, &mut violations);
    }
    violations
}

fn check_section(run: &str, s: &Section, out: &mut Vec<String>) {
    let ctx = |what: String| format!("{run} [{}]: {what}", s.label);
    // Metric-only sections (resource models) carry no hub state to check.
    let has_hub_state = !s.ports.is_empty() || !s.entities.is_empty();
    if has_hub_state && s.events == 0 && s.now_ns > 0 {
        out.push(ctx("no events processed by capture time".to_string()));
    }
    if !(0.0..=1.0 + 1e-9).contains(&s.jain_goodput) {
        out.push(ctx(format!(
            "jain_goodput {} outside [0, 1]",
            s.jain_goodput
        )));
    }
    for p in &s.ports {
        if !p.conserves {
            out.push(ctx(format!(
                "port n{}/p{} does not conserve bytes",
                p.node, p.port
            )));
        }
    }
    for b in &s.buffers {
        if b.occupancy_bytes > b.capacity_bytes {
            out.push(ctx(format!(
                "pool n{} occupancy {} B exceeds capacity {} B",
                b.node, b.occupancy_bytes, b.capacity_bytes
            )));
        }
        if b.peak_occupancy_bytes > b.capacity_bytes {
            out.push(ctx(format!(
                "pool n{} peak {} B exceeds capacity {} B",
                b.node, b.peak_occupancy_bytes, b.capacity_bytes
            )));
        }
    }
    for a in &s.aqs {
        if a.mean_gap_bytes < 0.0 {
            out.push(ctx(format!(
                "aq {}/{} negative mean gap {}",
                a.tag, a.position, a.mean_gap_bytes
            )));
        }
        if a.gap_samples > 0 && a.mean_gap_bytes > a.max_gap_bytes as f64 + 1e-6 {
            out.push(ctx(format!(
                "aq {}/{} mean gap {} exceeds max gap {}",
                a.tag, a.position, a.mean_gap_bytes, a.max_gap_bytes
            )));
        }
    }
    let mut degraded_pkts = 0u64;
    for t in &s.tables {
        if t.budget_bytes > 0 {
            if t.occupancy_bytes > t.budget_bytes {
                out.push(ctx(format!(
                    "table n{}/{} occupancy {} B exceeds budget {} B",
                    t.node, t.position, t.occupancy_bytes, t.budget_bytes
                )));
            }
            if t.peak_bytes > t.budget_bytes {
                out.push(ctx(format!(
                    "table n{}/{} peak {} B exceeds budget {} B",
                    t.node, t.position, t.peak_bytes, t.budget_bytes
                )));
            }
        }
        if t.occupancy_bytes > t.peak_bytes {
            out.push(ctx(format!(
                "table n{}/{} occupancy {} B exceeds its own peak {} B",
                t.node, t.position, t.occupancy_bytes, t.peak_bytes
            )));
        }
        if t.degraded_pkts > 0 && (t.degraded_flows == 0 || t.degraded_bytes == 0) {
            out.push(ctx(format!(
                "table n{}/{} degraded accounting inconsistent \
                 (pkts {}, flows {}, bytes {})",
                t.node, t.position, t.degraded_pkts, t.degraded_flows, t.degraded_bytes
            )));
        }
        degraded_pkts += t.degraded_pkts;
    }
    if degraded_pkts > 0 {
        let rx: u64 = s.entities.iter().map(|e| e.rx_bytes).sum();
        if rx == 0 {
            out.push(ctx(format!(
                "{degraded_pkts} degraded packet(s) but no entity received bytes \
                 — degradation was a blackout, not graceful"
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_bench::report::RunReport;

    /// A minimal hand-built report JSON with one section. The pieces that
    /// the test varies are spliced in as arguments.
    fn report_with(port_conserves: bool, table_occ: u64, table_budget: u64) -> RunReport {
        let json = format!(
            "{{\"name\":\"unit\",\"sections\":[{{\"label\":\"run\",\"now_ns\":1000,\
             \"events\":5,\"jain_goodput\":1.000000,\
             \"entities\":[{{\"entity\":1,\"rx_bytes\":1000,\"goodput_gbps\":1.000000,\
             \"tx_pkts\":1,\"tx_bytes\":1060,\"drops\":0,\"pq_p50_ns\":null,\
             \"pq_p99_ns\":null,\"vq_p50_ns\":null,\"vq_p99_ns\":null,\"flows\":1,\
             \"flows_completed\":1,\"completion_s\":null,\"rate_series_bps\":[]}}],\
             \"ports\":[{{\"node\":0,\"port\":1,\"enqueued_bytes\":1060,\
             \"dequeued_bytes\":1060,\"dropped_bytes\":0,\"resident_bytes\":0,\
             \"conserves\":{port_conserves},\"taildrops\":0,\"red_drops\":0,\
             \"shaper_drops\":0,\"shared_rejects\":0,\"aq_drops\":0,\
             \"overflow_drops\":0,\"link_drops\":0,\"corrupt_drops\":0,\
             \"wire_dropped_bytes\":0,\"ecn_marks\":0,\"tx_pkts\":1,\"tx_bytes\":1060,\
             \"peak_occupancy_bytes\":1060,\"occupancy\":[]}}],\
             \"buffers\":[],\"metrics\":{{}},\"aqs\":[],\
             \"tables\":[{{\"node\":0,\"position\":\"ingress\",\
             \"policy\":\"reject_new\",\"budget_bytes\":{table_budget},\
             \"occupancy_bytes\":{table_occ},\"peak_bytes\":{table_occ},\
             \"rejected_deploys\":0,\"evictions\":0,\"readmissions\":0,\
             \"degraded_flows\":1,\"degraded_pkts\":4,\"degraded_bytes\":4240}}],\
             \"faults\":{{\"injected\":[],\"link_down_drops\":0,\
             \"link_down_dropped_bytes\":0,\"corrupt_drops\":0,\
             \"corrupt_dropped_bytes\":0,\"pause_drops\":0,\
             \"pause_dropped_bytes\":0}}}}]}}\n"
        );
        RunReport::parse_json(&json).expect("hand-built report parses")
    }

    #[test]
    fn clean_report_passes() {
        let r = report_with(true, 45, 105);
        assert_eq!(check_report(&r), Vec::<String>::new());
    }

    #[test]
    fn conservation_breach_is_flagged() {
        let r = report_with(false, 45, 105);
        let v = check_report(&r);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("does not conserve"));
    }

    #[test]
    fn table_over_budget_is_flagged() {
        let r = report_with(true, 120, 105);
        let v = check_report(&r);
        assert_eq!(v.len(), 2, "{v:?}"); // occupancy and peak both over.
        assert!(v[0].contains("exceeds budget"));
    }

    #[test]
    fn unbudgeted_table_is_not_bounded() {
        // budget_bytes == 0 means unbounded: occupancy may be anything.
        let r = report_with(true, 10_000, 0);
        assert!(check_report(&r).is_empty());
    }
}
