//! `aq-harness` — parallel multi-seed sweep orchestrator with a
//! deterministic regression gate.
//!
//! The sim crates answer "what does one seeded run do"; this crate
//! answers "what do *ensembles* of runs say, and did they change". It
//! declares sweeps as (scenario × approach × parameter grid × seed set)
//! over the named scenarios in [`aq_workloads::registry`], fans the runs
//! over a fixed-size OS-thread pool (`--jobs N`), and merges results into
//! key-ordered maps so the emitted `sweep.json`/`sweep.csv` are
//! byte-identical regardless of scheduling. Per-config seed ensembles
//! collapse to min/mean/max + a normal-approximation 95% CI.
//!
//! The `aq-sweep` binary exposes this as a CLI:
//!
//! * `aq-sweep list` — scenarios, their parameters, and named sweeps;
//! * `aq-sweep run` — execute a sweep, write artifacts, check trends;
//! * `aq-sweep diff` — compare two sweep directories under per-metric
//!   relative tolerances (the CI regression gate);
//! * `aq-sweep check` — re-evaluate trend rules on an existing sweep.
//!
//! Parallelism lives *only* here: every individual `Simulator` run stays
//! single-threaded and deterministic, and the `no-thread-in-sim` lint
//! rule (crates/analysis) keeps threads out of the sim crates.

pub mod agg;
pub mod diff;
pub mod pool;
pub mod sweep;
pub mod trends;

use aq_bench::Approach;
use aq_workloads::registry::Params;
use sweep::{SweepAxis, SweepSpec};

/// The committed-baseline smoke sweep: 2 scenarios × 2 approaches ×
/// small grids × 3 seeds. Small enough for CI, wide enough to exercise
/// fairness and completion trends.
pub fn smoke_spec() -> SweepSpec {
    let p = |s: &str| Params::parse(s).expect("static smoke grid parses");
    SweepSpec {
        name: "smoke".to_string(),
        axes: vec![
            SweepAxis {
                scenario: "fairness_flows".to_string(),
                approaches: vec![Approach::Pq, Approach::Aq],
                grid: vec![p("b_flows=1,horizon_ms=20"), p("b_flows=4,horizon_ms=20")],
                seeds: vec![1, 2, 3],
            },
            SweepAxis {
                scenario: "completion_vms".to_string(),
                approaches: vec![Approach::Pq, Approach::Aq],
                grid: vec![p("vms=1"), p("vms=2")],
                seeds: vec![1, 2, 3],
            },
        ],
    }
}

/// Named sweep specs addressable from the CLI (`--spec <name>`).
pub fn named_specs() -> Vec<SweepSpec> {
    vec![smoke_spec()]
}

/// Look up a named spec.
pub fn find_spec(name: &str) -> Option<SweepSpec> {
    named_specs().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_spec_expands_to_the_documented_size() {
        let points = sweep::expand(&smoke_spec()).expect("smoke expands");
        // (2 grid x 2 approaches x 3 seeds) per scenario, 2 scenarios.
        assert_eq!(points.len(), 24);
    }

    #[test]
    fn named_specs_are_findable() {
        assert!(find_spec("smoke").is_some());
        assert!(find_spec("nope").is_none());
    }
}
