//! `aq-harness` — parallel multi-seed sweep orchestrator with a
//! deterministic regression gate.
//!
//! The sim crates answer "what does one seeded run do"; this crate
//! answers "what do *ensembles* of runs say, and did they change". It
//! declares sweeps as (scenario × approach × parameter grid × seed set)
//! over the named scenarios in [`aq_workloads::registry`], fans the runs
//! over a fixed-size OS-thread pool (`--jobs N`), and merges results into
//! key-ordered maps so the emitted `sweep.json`/`sweep.csv` are
//! byte-identical regardless of scheduling. Per-config seed ensembles
//! collapse to min/mean/max + a normal-approximation 95% CI.
//!
//! The `aq-sweep` binary exposes this as a CLI:
//!
//! * `aq-sweep list` — scenarios, their parameters, and named sweeps;
//! * `aq-sweep run` — execute a sweep, write artifacts, check trends;
//! * `aq-sweep diff` — compare two sweep directories under per-metric
//!   relative tolerances (the CI regression gate);
//! * `aq-sweep check` — re-evaluate trend rules on an existing sweep;
//! * `aq-sweep soak` — seed-rotated chaos soak over the smoke/extended
//!   grids, every run report gated by the invariant oracle.
//!
//! Parallelism lives *only* here: every individual `Simulator` run stays
//! single-threaded and deterministic, and the `no-thread-in-sim` lint
//! rule (crates/analysis) keeps threads out of the sim crates.

pub mod agg;
pub mod diff;
pub mod drill;
pub mod oracle;
pub mod perf;
pub mod pool;
pub mod sweep;
pub mod trends;

use aq_bench::Approach;
use aq_workloads::registry::Params;
use sweep::{SweepAxis, SweepSpec};

/// The committed-baseline smoke sweep: 7 scenarios × 2 approaches ×
/// small grids × 3 seeds. Small enough for CI, wide enough to exercise
/// fairness, UDP/TCP sharing, and completion trends plus both
/// fault-injection scenarios (link flaps and AQ state loss) and the
/// shared-buffer layer (admission-policy and AQM axes) end to end.
pub fn smoke_spec() -> SweepSpec {
    let p = |s: &str| Params::parse(s).expect("static smoke grid parses");
    SweepSpec {
        name: "smoke".to_string(),
        axes: vec![
            SweepAxis {
                scenario: "fairness_flows".to_string(),
                approaches: vec![Approach::Pq, Approach::Aq],
                grid: vec![p("b_flows=1,horizon_ms=20"), p("b_flows=4,horizon_ms=20")],
                seeds: vec![1, 2, 3],
            },
            SweepAxis {
                scenario: "udp_tcp_share".to_string(),
                approaches: vec![Approach::Pq, Approach::Aq],
                grid: vec![p("horizon_ms=20")],
                seeds: vec![1, 2, 3],
            },
            SweepAxis {
                scenario: "completion_vms".to_string(),
                approaches: vec![Approach::Pq, Approach::Aq],
                grid: vec![p("vms=1"), p("vms=2")],
                seeds: vec![1, 2, 3],
            },
            SweepAxis {
                scenario: "linkflap_dumbbell".to_string(),
                approaches: vec![Approach::Pq, Approach::Aq],
                grid: vec![p("horizon_ms=30")],
                seeds: vec![1, 2, 3],
            },
            SweepAxis {
                scenario: "aq_state_loss".to_string(),
                approaches: vec![Approach::Pq, Approach::Aq],
                grid: vec![p("horizon_ms=25")],
                seeds: vec![1, 2, 3],
            },
            SweepAxis {
                scenario: "incast_sharedbuf".to_string(),
                approaches: vec![Approach::Pq, Approach::Aq],
                grid: vec![
                    p("admission=0,horizon_ms=20"),
                    p("admission=1,horizon_ms=20"),
                    p("admission=2,horizon_ms=20"),
                ],
                seeds: vec![1, 2, 3],
            },
            SweepAxis {
                scenario: "websearch_aqm_zoo".to_string(),
                approaches: vec![Approach::Pq, Approach::Aq],
                grid: vec![
                    p("aqm=0,horizon_ms=20"),
                    p("aqm=1,horizon_ms=20"),
                    p("aqm=2,horizon_ms=20"),
                ],
                seeds: vec![1, 2, 3],
            },
            SweepAxis {
                scenario: "tenant_churn".to_string(),
                approaches: vec![Approach::Pq, Approach::Aq],
                grid: vec![p("policy=0"), p("policy=1")],
                seeds: vec![1, 2, 3],
            },
        ],
    }
}

/// The committed-baseline extended sweep: the mixed-CC dumbbell and the
/// inter-pod fat tree, 2 grid points each × 2 approaches × 3 seeds.
/// Nightly CI diffs this against `baselines/expected/extended`.
pub fn extended_spec() -> SweepSpec {
    let p = |s: &str| Params::parse(s).expect("static extended grid parses");
    SweepSpec {
        name: "extended".to_string(),
        axes: vec![
            SweepAxis {
                scenario: "cc_mix".to_string(),
                approaches: vec![Approach::Pq, Approach::Aq],
                grid: vec![p("pair=0"), p("pair=1")],
                seeds: vec![1, 2, 3],
            },
            SweepAxis {
                scenario: "interpod_fattree".to_string(),
                approaches: vec![Approach::Pq, Approach::Aq],
                grid: vec![p("b_flows=2"), p("b_flows=4")],
                seeds: vec![1, 2, 3],
            },
        ],
    }
}

/// The nightly wide sweep: every registered scenario × all four
/// approaches × 5 seeds at default grids. Trend-checked only (no
/// committed baseline — the grid is too wide to keep bytes for).
pub fn nightly_spec() -> SweepSpec {
    let axes = aq_workloads::registry::registry()
        .iter()
        .map(|def| SweepAxis {
            scenario: def.name.to_string(),
            approaches: Approach::ALL.to_vec(),
            grid: vec![],
            seeds: vec![1, 2, 3, 4, 5],
        })
        .collect();
    SweepSpec {
        name: "nightly".to_string(),
        axes,
    }
}

/// One seed-rotation round of the chaos soak: the smoke and extended
/// grids (which between them cover fault injection, shared buffers, AQM
/// variants, and the budget-pressured tenant-churn scenario) at a single
/// seed derived from the round index. `aq-sweep soak` runs consecutive
/// rounds and evaluates the invariant oracle (see [`oracle`]) against
/// every run report each round produces, so long soaks replay
/// byte-identically from the same base seed.
pub fn soak_round_spec(base_seed: u64, round: u64) -> SweepSpec {
    let seed = base_seed.wrapping_add(round.wrapping_mul(1000));
    let mut axes = smoke_spec().axes;
    axes.extend(extended_spec().axes);
    for axis in &mut axes {
        axis.seeds = vec![seed];
    }
    SweepSpec {
        name: format!("soak-round{round}"),
        axes,
    }
}

/// Named sweep specs addressable from the CLI (`--spec <name>`).
pub fn named_specs() -> Vec<SweepSpec> {
    vec![smoke_spec(), extended_spec(), nightly_spec()]
}

/// Look up a named spec.
pub fn find_spec(name: &str) -> Option<SweepSpec> {
    named_specs().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_spec_expands_to_the_documented_size() {
        let points = sweep::expand(&smoke_spec()).expect("smoke expands");
        // 2-point grids for fairness/completion, 1-point grids for
        // UDP/TCP sharing and the two fault scenarios, 3-point grids for
        // the shared-buffer admission and AQM axes, a 2-point overflow-
        // policy grid for tenant churn, 2 approaches x 3 seeds each.
        assert_eq!(points.len(), 90);
        for scenario in [
            "linkflap_dumbbell",
            "aq_state_loss",
            "incast_sharedbuf",
            "websearch_aqm_zoo",
            "tenant_churn",
        ] {
            assert!(
                points.iter().any(|p| p.key.scenario == scenario),
                "smoke must cover fault scenario `{scenario}`"
            );
        }
    }

    #[test]
    fn extended_spec_expands_to_the_documented_size() {
        let points = sweep::expand(&extended_spec()).expect("extended expands");
        // (2 grid x 2 approaches x 3 seeds) per scenario, 2 scenarios.
        assert_eq!(points.len(), 24);
    }

    #[test]
    fn nightly_spec_covers_every_scenario_and_approach() {
        let points = sweep::expand(&nightly_spec()).expect("nightly expands");
        // 10 scenarios x 4 approaches x 5 seeds at the default grid point.
        assert_eq!(points.len(), 200);
    }

    #[test]
    fn soak_rounds_rotate_seeds_deterministically() {
        let r0 = soak_round_spec(42, 0);
        let r1 = soak_round_spec(42, 1);
        assert_eq!(r0.axes.len(), r1.axes.len());
        for axis in &r0.axes {
            assert_eq!(axis.seeds, vec![42]);
        }
        for axis in &r1.axes {
            assert_eq!(axis.seeds, vec![1042]);
        }
        // Same (seed, round) → identical expansion: the soak replays.
        let a = sweep::expand(&soak_round_spec(7, 3)).expect("expands");
        let b = sweep::expand(&soak_round_spec(7, 3)).expect("expands");
        let ka: Vec<_> = a.iter().map(|p| p.key.clone()).collect();
        let kb: Vec<_> = b.iter().map(|p| p.key.clone()).collect();
        assert_eq!(ka, kb);
        assert!(ka.iter().any(|k| k.scenario == "tenant_churn"));
    }

    #[test]
    fn named_specs_are_findable() {
        assert!(find_spec("smoke").is_some());
        assert!(find_spec("extended").is_some());
        assert!(find_spec("nightly").is_some());
        assert!(find_spec("nope").is_none());
    }
}
