//! Fixed-size OS-thread worker pool for run fan-out.
//!
//! Parallelism in this workspace exists at exactly one granularity: whole
//! simulation runs. Each run is a single-threaded, seeded, deterministic
//! `Simulator` execution; the pool only decides *when* each run executes,
//! never *what* it computes. Results come back indexed by task id, so the
//! caller's merge order — and therefore every byte of merged output — is
//! independent of scheduling. (The sim crates themselves are barred from
//! threads by the `no-thread-in-sim` lint rule; this crate is the
//! sanctioned home of `std::thread`.)
//!
//! Two pool flavors exist: the scoped [`run_indexed`]/[`run_indexed_caught`]
//! pair for workloads that are known to terminate, and the hang-proof
//! [`run_supervised`] pool, which enforces a per-task wall-clock budget
//! from a supervisor thread so one stuck run cannot stall a whole sweep.
//! The wall clock is read *only* by the supervisor — never by simulation
//! code, which the `no-wallclock-in-sim` lint rule enforces.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Run `task(0..n_tasks)` over `jobs` worker threads and return the
/// results in task-index order.
///
/// Workers pull the next unclaimed index from a shared counter, so the
/// pool stays busy even when run durations differ wildly. `jobs` is
/// clamped to `[1, n_tasks]`. A panicking task propagates after all
/// workers finish.
pub fn run_indexed<T, F>(n_tasks: usize, jobs: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n_tasks == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n_tasks);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    let task = &task;
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                let out = task(i);
                *slots[i].lock().expect("result slot lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot lock")
                .unwrap_or_else(|| panic!("task {i} produced no result"))
        })
        .collect()
}

/// Like [`run_indexed`], but a panicking task becomes `Err(message)` in
/// its slot instead of taking down the whole pool: the remaining tasks
/// still run, and the caller decides what a failed slot means (the sweep
/// records it in `sweep.json` and exits nonzero after the grid finishes).
pub fn run_indexed_caught<T, F>(n_tasks: usize, jobs: usize, task: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed(n_tasks, jobs, |i| {
        catch_unwind(AssertUnwindSafe(|| task(i))).map_err(panic_message)
    })
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "panicked with a non-string payload".to_string()
    }
}

/// Outcome of one task under the supervised pool.
#[derive(Debug)]
pub enum TaskResult<T> {
    /// The task returned normally.
    Done(T),
    /// The task panicked; the pool caught the unwind and preserved the
    /// payload message.
    Panicked(String),
    /// The task exceeded the per-task wall-clock budget and was abandoned
    /// by the supervisor.
    TimedOut,
}

/// Per-task slot state shared between workers and the supervisor.
enum Slot<T> {
    /// No worker has claimed the task yet.
    Pending,
    /// A worker started the task at the recorded wall-clock instant.
    Running(Instant),
    /// The watchdog fired while the task was running: a replacement
    /// worker has been spawned, but the original worker keeps a grace
    /// window (recorded here) to deliver a result that raced the
    /// deadline. The worker's real outcome wins; only a slot still
    /// overdue after the grace hardens into [`TaskResult::TimedOut`].
    Overdue(Instant),
    /// Resolved — by the worker, or by the supervisor for overdue tasks.
    Finished(TaskResult<T>),
}

struct Supervised<T, F> {
    task: F,
    n_tasks: usize,
    next: AtomicUsize,
    slots: Vec<Mutex<Slot<T>>>,
}

fn supervised_worker<T, F>(pool: Arc<Supervised<T, F>>)
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    loop {
        let i = pool.next.fetch_add(1, Ordering::Relaxed);
        if i >= pool.n_tasks {
            return;
        }
        *pool.slots[i].lock().expect("result slot lock") = Slot::Running(Instant::now());
        let outcome = match catch_unwind(AssertUnwindSafe(|| (pool.task)(i))) {
            Ok(v) => TaskResult::Done(v),
            Err(payload) => TaskResult::Panicked(panic_message(payload)),
        };
        let mut slot = pool.slots[i].lock().expect("result slot lock");
        match *slot {
            Slot::Finished(_) => {
                // The supervisor already hardened this task to TimedOut
                // and spawned a replacement worker: discard the late
                // result and retire so the pool never runs more than
                // `jobs` live workers.
                return;
            }
            Slot::Overdue(_) => {
                // The watchdog fired while the result was in flight. The
                // real outcome wins — a run that finished in the same
                // tick the watchdog fired is a success, recorded exactly
                // once — but a replacement worker already took this
                // worker's place, so retire after writing.
                *slot = Slot::Finished(outcome);
                return;
            }
            Slot::Pending | Slot::Running(_) => {
                *slot = Slot::Finished(outcome);
            }
        }
    }
}

/// Supervisor poll interval: how often overdue tasks are checked for.
const SUPERVISOR_POLL: Duration = Duration::from_millis(2);

/// How long an overdue task's original worker keeps the right to deliver
/// its result before the slot hardens into [`TaskResult::TimedOut`].
/// Covers the race where a run finishes in the same supervisor tick the
/// watchdog fires: the worker has computed the outcome but not yet taken
/// the slot lock. Sized generously so an oversubscribed machine cannot
/// preempt a finishing worker past it; a genuinely hung run is merely
/// reported one grace window later, which is noise against any real
/// timeout budget.
const OVERDUE_GRACE: Duration = Duration::from_millis(25);

/// Like [`run_indexed_caught`], but *hang-proof*: each task runs on a
/// detached worker under a wall-clock budget enforced by a supervisor on
/// the calling thread. A task still running past `timeout` is recorded as
/// [`TaskResult::TimedOut`], its worker is abandoned (a stuck simulation
/// cannot be cancelled cooperatively), and a replacement worker is spawned
/// if unclaimed tasks remain — so one hung run can never stall the rest of
/// the grid. `timeout: None` disables the watchdog.
///
/// The deadline is checked only here, from the supervisor: simulation code
/// stays free of wall-clock reads (see the `no-wallclock-in-sim` lint
/// rule), and the sim's own outputs remain deterministic.
pub fn run_supervised<T, F>(
    n_tasks: usize,
    jobs: usize,
    timeout: Option<Duration>,
    task: F,
) -> Vec<TaskResult<T>>
where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    if n_tasks == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n_tasks);
    let pool = Arc::new(Supervised {
        task,
        n_tasks,
        next: AtomicUsize::new(0),
        slots: (0..n_tasks).map(|_| Mutex::new(Slot::Pending)).collect(),
    });
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::with_capacity(jobs);
    for _ in 0..jobs {
        let p = Arc::clone(&pool);
        workers.push(std::thread::spawn(move || supervised_worker(p)));
    }
    loop {
        let mut finished = 0usize;
        for slot in &pool.slots {
            let mut s = slot.lock().expect("result slot lock");
            match &*s {
                Slot::Finished(_) => finished += 1,
                Slot::Running(started) => {
                    if timeout.is_some_and(|t| started.elapsed() >= t) {
                        // Don't declare the timeout yet: the worker may
                        // have finished in this very tick and be about
                        // to write. Mark the slot overdue (the worker's
                        // result still wins during the grace window) and
                        // restore the pool's parallelism if work remains.
                        *s = Slot::Overdue(Instant::now());
                        drop(s);
                        if pool.next.load(Ordering::Relaxed) < n_tasks {
                            let p = Arc::clone(&pool);
                            workers.push(std::thread::spawn(move || supervised_worker(p)));
                        }
                    }
                }
                Slot::Overdue(since) => {
                    if since.elapsed() >= OVERDUE_GRACE {
                        *s = Slot::Finished(TaskResult::TimedOut);
                        finished += 1;
                    }
                }
                Slot::Pending => {}
            }
        }
        if finished == n_tasks {
            break;
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
    // Reap every worker that ran to completion; only genuinely hung
    // workers (whose tasks were hardened to TimedOut) stay detached —
    // a stuck simulation cannot be cancelled cooperatively.
    for handle in workers {
        if handle.is_finished() {
            let _ = handle.join();
        }
    }
    pool.slots
        .iter()
        .map(|slot| {
            // Swap in a tombstone so an abandoned worker that wakes later
            // finds the slot resolved and retires without writing.
            std::mem::replace(
                &mut *slot.lock().expect("result slot lock"),
                Slot::Finished(TaskResult::TimedOut),
            )
        })
        .map(|s| match s {
            Slot::Finished(r) => r,
            _ => unreachable!("supervisor exits only once every slot is finished"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order_regardless_of_jobs() {
        let square = |i: usize| i * i;
        let serial = run_indexed(17, 1, square);
        let wide = run_indexed(17, 8, square);
        assert_eq!(serial, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(serial, wide);
    }

    #[test]
    fn zero_tasks_and_oversized_pools_are_fine() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(2, 64, |i| i), vec![0, 1]);
    }

    #[test]
    fn a_panicking_task_fails_its_slot_but_the_grid_completes() {
        // The default panic hook would spam test output; silence it for
        // the deliberately panicking tasks.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = run_indexed_caught(10, 4, |i| {
            if i == 3 {
                panic!("task {i} exploded");
            }
            if i == 7 {
                // Non-format panics carry a `&str` payload.
                panic!("static boom");
            }
            i * 2
        });
        std::panic::set_hook(prev);
        assert_eq!(out.len(), 10);
        for (i, r) in out.iter().enumerate() {
            match i {
                3 => assert_eq!(r.as_ref().unwrap_err(), "task 3 exploded"),
                7 => assert_eq!(r.as_ref().unwrap_err(), "static boom"),
                _ => assert_eq!(*r.as_ref().unwrap(), i * 2),
            }
        }
    }

    #[test]
    fn supervised_pool_without_timeout_matches_run_indexed() {
        let out = run_supervised(9, 3, None, |i| i + 1);
        assert_eq!(out.len(), 9);
        for (i, r) in out.iter().enumerate() {
            match r {
                TaskResult::Done(v) => assert_eq!(*v, i + 1),
                other => panic!("task {i}: unexpected {other:?}"),
            }
        }
        assert!(run_supervised(0, 4, None, |i| i).is_empty());
    }

    #[test]
    fn a_hung_task_times_out_while_the_rest_of_the_grid_completes() {
        let out = run_supervised(6, 2, Some(Duration::from_millis(200)), |i| {
            if i == 1 {
                // A run that never returns: the supervisor must abandon it.
                std::thread::sleep(Duration::from_secs(120));
            }
            i * 3
        });
        assert_eq!(out.len(), 6);
        for (i, r) in out.iter().enumerate() {
            match (i, r) {
                (1, TaskResult::TimedOut) => {}
                (_, TaskResult::Done(v)) => assert_eq!(*v, i * 3),
                (i, other) => panic!("task {i}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn a_replacement_worker_rescues_the_grid_when_the_only_worker_hangs() {
        // jobs = 1 and the very first task hangs: without a replacement
        // worker the remaining tasks would never be claimed.
        let out = run_supervised(4, 1, Some(Duration::from_millis(150)), |i| {
            if i == 0 {
                std::thread::sleep(Duration::from_secs(120));
            }
            i
        });
        assert!(matches!(out[0], TaskResult::TimedOut));
        for (i, r) in out.iter().enumerate().skip(1) {
            assert!(
                matches!(r, TaskResult::Done(v) if *v == i),
                "task {i}: unexpected {r:?}"
            );
        }
    }

    #[test]
    fn panics_and_timeouts_are_reported_as_distinct_kinds() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = run_supervised(5, 2, Some(Duration::from_millis(200)), |i| {
            match i {
                0 => panic!("kaboom {i}"),
                3 => std::thread::sleep(Duration::from_secs(120)),
                _ => {}
            }
            i
        });
        std::panic::set_hook(prev);
        match &out[0] {
            TaskResult::Panicked(m) => assert_eq!(m, "kaboom 0"),
            other => panic!("task 0: unexpected {other:?}"),
        }
        assert!(matches!(out[3], TaskResult::TimedOut));
        for i in [1usize, 2, 4] {
            assert!(
                matches!(out[i], TaskResult::Done(v) if v == i),
                "task {i}: unexpected {:?}",
                out[i]
            );
        }
    }

    #[test]
    fn a_task_finishing_as_the_watchdog_fires_is_recorded_once_as_success() {
        // With a zero timeout every task is "overdue" the instant it
        // starts, so every completion races the watchdog — the worst
        // case of the deadline race. Each run still finishes within the
        // grace window, so each must be recorded exactly once, as its
        // real result, never as TimedOut.
        let ran = Arc::new(AtomicUsize::new(0));
        let ran_in_task = Arc::clone(&ran);
        let out = run_supervised(32, 4, Some(Duration::ZERO), move |i| {
            ran_in_task.fetch_add(1, Ordering::Relaxed);
            i * 5
        });
        assert_eq!(out.len(), 32);
        for (i, r) in out.iter().enumerate() {
            assert!(
                matches!(r, TaskResult::Done(v) if *v == i * 5),
                "task {i}: finished run misrecorded as {r:?}"
            );
        }
        assert_eq!(
            ran.load(Ordering::Relaxed),
            32,
            "every task claimed exactly once despite replacement workers"
        );
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let n = 100;
        let out = run_indexed(n, 7, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), n);
        assert_eq!(out.len(), n);
    }
}
