//! Fixed-size OS-thread worker pool for run fan-out.
//!
//! Parallelism in this workspace exists at exactly one granularity: whole
//! simulation runs. Each run is a single-threaded, seeded, deterministic
//! `Simulator` execution; the pool only decides *when* each run executes,
//! never *what* it computes. Results come back indexed by task id, so the
//! caller's merge order — and therefore every byte of merged output — is
//! independent of scheduling. (The sim crates themselves are barred from
//! threads by the `no-thread-in-sim` lint rule; this crate is the
//! sanctioned home of `std::thread`.)

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `task(0..n_tasks)` over `jobs` worker threads and return the
/// results in task-index order.
///
/// Workers pull the next unclaimed index from a shared counter, so the
/// pool stays busy even when run durations differ wildly. `jobs` is
/// clamped to `[1, n_tasks]`. A panicking task propagates after all
/// workers finish.
pub fn run_indexed<T, F>(n_tasks: usize, jobs: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n_tasks == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n_tasks);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    let task = &task;
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_tasks {
                    break;
                }
                let out = task(i);
                *slots[i].lock().expect("result slot lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.into_inner()
                .expect("result slot lock")
                .unwrap_or_else(|| panic!("task {i} produced no result"))
        })
        .collect()
}

/// Like [`run_indexed`], but a panicking task becomes `Err(message)` in
/// its slot instead of taking down the whole pool: the remaining tasks
/// still run, and the caller decides what a failed slot means (the sweep
/// records it in `sweep.json` and exits nonzero after the grid finishes).
pub fn run_indexed_caught<T, F>(n_tasks: usize, jobs: usize, task: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed(n_tasks, jobs, |i| {
        catch_unwind(AssertUnwindSafe(|| task(i))).map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else {
                "panicked with a non-string payload".to_string()
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order_regardless_of_jobs() {
        let square = |i: usize| i * i;
        let serial = run_indexed(17, 1, square);
        let wide = run_indexed(17, 8, square);
        assert_eq!(serial, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(serial, wide);
    }

    #[test]
    fn zero_tasks_and_oversized_pools_are_fine() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(2, 64, |i| i), vec![0, 1]);
    }

    #[test]
    fn a_panicking_task_fails_its_slot_but_the_grid_completes() {
        // The default panic hook would spam test output; silence it for
        // the deliberately panicking tasks.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = run_indexed_caught(10, 4, |i| {
            if i == 3 {
                panic!("task {i} exploded");
            }
            if i == 7 {
                // Non-format panics carry a `&str` payload.
                panic!("static boom");
            }
            i * 2
        });
        std::panic::set_hook(prev);
        assert_eq!(out.len(), 10);
        for (i, r) in out.iter().enumerate() {
            match i {
                3 => assert_eq!(r.as_ref().unwrap_err(), "task 3 exploded"),
                7 => assert_eq!(r.as_ref().unwrap_err(), "static boom"),
                _ => assert_eq!(*r.as_ref().unwrap(), i * 2),
            }
        }
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let n = 100;
        let out = run_indexed(n, 7, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), n);
        assert_eq!(out.len(), n);
    }
}
