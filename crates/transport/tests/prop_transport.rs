//! Property tests for the transport: the receiver must reassemble any
//! arrival order exactly, and the sender scoreboard must stay consistent
//! under arbitrary ACK sequences.

use aq_netsim::ids::{EntityId, FlowId, NodeId};
use aq_netsim::node::HostCtx;
use aq_netsim::packet::{Packet, TransportHeader};
use aq_netsim::stats::StatsHub;
use aq_netsim::time::Time;
use aq_transport::{CcAlgo, FlowSpec, ReceiverFlow, SenderFlow};
use proptest::prelude::*;

fn data(seq: u64, fin: bool) -> Packet {
    Packet::data(
        FlowId(1),
        EntityId(1),
        NodeId(0),
        NodeId(1),
        seq,
        1000,
        fin,
        Time::ZERO,
    )
}

proptest! {
    /// Any arrival permutation (with duplicates injected) reassembles:
    /// cum reaches the total, completion fires exactly when the FIN and
    /// all predecessors are in, and sack_hi never runs below cum.
    #[test]
    fn receiver_reassembles_any_order(
        n in 2u64..60,
        seed in any::<u64>(),
        dup_every in 1usize..7,
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut order: Vec<u64> = (0..n).collect();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let mut r = ReceiverFlow::new(FlowId(1));
        let mut stats = StatsHub::new();
        stats.register_flow(FlowId(1), EntityId(1), n * 1000, Time::ZERO);
        let mut delivered = 0u64;
        for (i, seq) in order.iter().enumerate() {
            let mut ctx = HostCtx::new(Time::from_micros(i as u64), NodeId(1), &mut stats);
            r.on_data(&mut ctx, &data(*seq, *seq == n - 1));
            delivered += 1;
            prop_assert!(r.sack_hi() >= r.cum_ack());
            prop_assert!(r.cum_ack() <= n);
            // Duplicate injection: re-deliver an already-seen segment.
            if i % dup_every == 0 {
                let mut ctx = HostCtx::new(Time::from_micros(i as u64), NodeId(1), &mut stats);
                r.on_data(&mut ctx, &data(*seq, *seq == n - 1));
            }
            let _ = delivered;
        }
        prop_assert_eq!(r.cum_ack(), n, "all segments reassembled");
        prop_assert!(r.completed, "flow completed");
        prop_assert!(stats.flow(FlowId(1)).expect("registered").end.is_some());
    }

    /// Feeding the sender arbitrary (even nonsensical) ACK sequences never
    /// panics, never regresses cum_ack, and keeps the pipe bounded by the
    /// window.
    #[test]
    fn sender_scoreboard_stays_consistent(
        acks in prop::collection::vec((0u64..100, 0u64..100), 1..200),
    ) {
        let spec = FlowSpec::long_tcp(FlowId(1), EntityId(1), NodeId(0), NodeId(1), CcAlgo::NewReno);
        let mut s = SenderFlow::new(spec);
        let mut stats = StatsHub::new();
        {
            let mut ctx = HostCtx::new(Time::ZERO, NodeId(0), &mut stats);
            s.start(&mut ctx);
        }
        let mut last_cum = 0u64;
        for (i, (cum, this_seq)) in acks.into_iter().enumerate() {
            let now = Time::from_micros(10 + i as u64);
            let mut ctx = HostCtx::new(now, NodeId(0), &mut stats);
            s.on_ack(&mut ctx, cum, this_seq + 1, this_seq, false, 0, Time::ZERO, false);
            let sent = ctx.take_sends();
            // All emitted packets are data segments of this flow.
            for p in &sent {
                let is_data = matches!(p.transport, TransportHeader::Data { .. });
                prop_assert!(is_data);
                prop_assert_eq!(p.flow, FlowId(1));
            }
            // cum_ack is monotone even under regressive ACK input.
            let cum_now = cum.max(last_cum);
            last_cum = cum_now;
            // Pipe bounded by the window (floor >= 1).
            let wnd = s.cwnd().floor().max(1.0) as u64;
            prop_assert!(
                s.outstanding() <= wnd,
                "pipe {} exceeds window {}",
                s.outstanding(),
                wnd
            );
        }
    }

    /// A finite flow fed a perfect in-order ACK stream always terminates
    /// with exactly `total` distinct segments sent (no spurious
    /// retransmissions on a clean path).
    #[test]
    fn clean_path_sends_each_segment_once(bytes in 1_000u64..2_000_000) {
        let spec = FlowSpec::sized_tcp(
            FlowId(1),
            EntityId(1),
            NodeId(0),
            NodeId(1),
            CcAlgo::Cubic,
            bytes,
            Time::ZERO,
        );
        let total = spec.total_segments().expect("finite");
        let mut s = SenderFlow::new(spec);
        let mut stats = StatsHub::new();
        let mut pending: Vec<u64> = Vec::new();
        {
            let mut ctx = HostCtx::new(Time::ZERO, NodeId(0), &mut stats);
            s.start(&mut ctx);
            pending.extend(ctx.take_sends().iter().filter_map(|p| match p.transport {
                TransportHeader::Data { seq, .. } => Some(seq),
                _ => None,
            }));
        }
        let mut now_us = 0u64;
        let mut cum = 0u64;
        while !s.finished {
            prop_assert!(!pending.is_empty(), "stalled before completion");
            let seq = pending.remove(0);
            prop_assert_eq!(seq, cum, "in-order delivery expected");
            cum += 1;
            now_us += 50;
            let fin_acked = cum == total;
            let mut ctx = HostCtx::new(Time::from_micros(now_us), NodeId(0), &mut stats);
            s.on_ack(&mut ctx, cum, cum, seq, false, 0, Time::from_micros(now_us - 50), fin_acked);
            pending.extend(ctx.take_sends().iter().filter_map(|p| match p.transport {
                TransportHeader::Data { seq, .. } => Some(seq),
                _ => None,
            }));
        }
        prop_assert_eq!(s.segments_sent, total);
        prop_assert_eq!(s.retransmissions, 0);
    }
}
