//! Unreactive UDP senders: paced constant-bit-rate datagram sources.
//!
//! These model the paper's "aggressive application" — a sender that
//! ignores all congestion signals and pushes at a configured rate
//! (typically the link capacity), starving TCP through a shared physical
//! queue but held to its allocation by an AQ.

use crate::flow::{FlowKind, FlowSpec};
use aq_netsim::node::HostCtx;
use aq_netsim::packet::Packet;
use aq_netsim::time::{Duration, Rate};

/// Sender-side state of one paced UDP flow.
pub struct UdpSender {
    /// The flow description.
    pub spec: FlowSpec,
    rate: Rate,
    remaining: Option<u64>,
    /// Datagrams sent.
    pub sent: u64,
    /// Whether a finite flow has sent all its bytes.
    pub finished: bool,
}

impl UdpSender {
    /// Build from a UDP flow spec.
    ///
    /// # Panics
    /// Panics if the spec is TCP.
    pub fn new(spec: FlowSpec) -> UdpSender {
        let FlowKind::Udp { rate } = spec.kind else {
            panic!("UdpSender requires a UDP spec");
        };
        UdpSender {
            rate,
            remaining: spec.bytes,
            sent: 0,
            finished: false,
            spec,
        }
    }

    /// Pacing interval between datagrams of the configured size.
    pub fn interval(&self) -> Duration {
        self.rate
            .transmit_time(self.spec.mss as u64 + aq_netsim::packet::HEADER_BYTES as u64)
    }

    /// Emit one datagram and report when the next should go out (`None`
    /// when the flow is done).
    pub fn send_one(&mut self, ctx: &mut HostCtx<'_>) -> Option<Duration> {
        if self.finished {
            return None;
        }
        let payload = match self.remaining {
            None => self.spec.mss,
            Some(0) => {
                self.finished = true;
                return None;
            }
            Some(rem) => rem.min(self.spec.mss as u64) as u32,
        };
        if let Some(rem) = &mut self.remaining {
            *rem -= payload as u64;
        }
        let mut pkt = Packet::datagram(
            self.spec.flow,
            self.spec.entity,
            self.spec.src,
            self.spec.dst,
            payload,
            ctx.now,
        );
        pkt.aq_ingress = self.spec.aq_ingress;
        pkt.aq_egress = self.spec.aq_egress;
        ctx.send(pkt);
        self.sent += 1;
        if self.remaining == Some(0) {
            self.finished = true;
            return None;
        }
        Some(self.interval())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_netsim::ids::{EntityId, FlowId, NodeId};
    use aq_netsim::stats::StatsHub;
    use aq_netsim::time::Time;

    fn spec(rate_gbps: u64, bytes: Option<u64>) -> FlowSpec {
        let mut s = FlowSpec::long_udp(
            FlowId(1),
            EntityId(1),
            NodeId(0),
            NodeId(1),
            Rate::from_gbps(rate_gbps),
        );
        s.bytes = bytes;
        s
    }

    #[test]
    fn pacing_matches_rate() {
        let u = UdpSender::new(spec(10, None));
        // 1060 bytes at 10 Gbps = 848 ns per datagram.
        assert_eq!(u.interval(), Duration::from_nanos(848));
    }

    #[test]
    fn long_lived_flow_keeps_going() {
        let mut u = UdpSender::new(spec(10, None));
        let mut stats = StatsHub::new();
        for i in 0..100 {
            let mut ctx = HostCtx::new(Time::from_nanos(i * 848), NodeId(0), &mut stats);
            assert!(u.send_one(&mut ctx).is_some());
            assert_eq!(ctx.take_sends().len(), 1);
        }
        assert_eq!(u.sent, 100);
    }

    #[test]
    fn finite_flow_stops_after_bytes() {
        let mut u = UdpSender::new(spec(10, Some(2500)));
        let mut stats = StatsHub::new();
        let mut payloads = Vec::new();
        loop {
            let mut ctx = HostCtx::new(Time::ZERO, NodeId(0), &mut stats);
            let more = u.send_one(&mut ctx);
            payloads.extend(ctx.take_sends().iter().map(|p| p.payload()));
            if more.is_none() {
                break;
            }
        }
        assert_eq!(payloads, vec![1000, 1000, 500]);
        assert!(u.finished);
    }
}
