//! TCP-Illinois (Liu, Başar, Srikant 2006): a loss-delay hybrid AIMD.
//! Loss still triggers the decrease, but the additive-increase rate α and
//! the decrease factor β adapt to the average queuing delay — large α /
//! small β when delay is low (far from congestion), small α / large β when
//! delay is high.

use super::{clamp_cwnd, AckSignals, CongestionControl, MAX_CWND};
use aq_netsim::time::{Duration, Time};

const ALPHA_MAX: f64 = 10.0;
const ALPHA_MIN: f64 = 0.3;
const BETA_MIN: f64 = 0.125;
const BETA_MAX: f64 = 0.5;
/// Fraction of the max observed queuing delay below which α = α_max.
const D1: f64 = 0.01;
/// Fractions bounding the β ramp.
const D2: f64 = 0.1;
const D3: f64 = 0.8;

/// TCP-Illinois state.
#[derive(Debug, Clone)]
pub struct Illinois {
    cwnd: f64,
    ssthresh: f64,
    /// Exponentially-averaged queuing delay (seconds).
    avg_qdelay: f64,
    /// Largest queuing delay observed (seconds).
    max_qdelay: f64,
}

impl Illinois {
    /// Initial window of 10 segments.
    pub fn new() -> Illinois {
        Illinois {
            cwnd: 10.0,
            ssthresh: MAX_CWND,
            avg_qdelay: 0.0,
            max_qdelay: 0.0,
        }
    }

    /// Current additive-increase parameter α(dₐ) — the concave-down curve
    /// of the paper: α = κ₁/(κ₂ + dₐ) fitted so α(d₁·d_m) = α_max and
    /// α(d_m) = α_min.
    pub fn alpha(&self) -> f64 {
        let dm = self.max_qdelay;
        if dm <= 0.0 {
            return ALPHA_MAX;
        }
        let da = self.avg_qdelay;
        if da <= D1 * dm {
            return ALPHA_MAX;
        }
        let k1 = (dm - D1 * dm) * ALPHA_MIN * ALPHA_MAX / (ALPHA_MAX - ALPHA_MIN);
        let k2 = k1 / ALPHA_MAX - D1 * dm;
        (k1 / (k2 + da)).clamp(ALPHA_MIN, ALPHA_MAX)
    }

    /// Current multiplicative-decrease parameter β(dₐ): linear ramp from
    /// β_min below d₂·d_m to β_max above d₃·d_m.
    pub fn beta(&self) -> f64 {
        let dm = self.max_qdelay;
        if dm <= 0.0 {
            return BETA_MIN;
        }
        let da = self.avg_qdelay;
        if da <= D2 * dm {
            BETA_MIN
        } else if da >= D3 * dm {
            BETA_MAX
        } else {
            BETA_MIN + (BETA_MAX - BETA_MIN) * (da - D2 * dm) / ((D3 - D2) * dm)
        }
    }

    fn observe_delay(&mut self, qd: Duration) {
        let q = qd.as_secs_f64();
        self.max_qdelay = self.max_qdelay.max(q);
        // EWMA with gain 1/8, one sample per ACK.
        self.avg_qdelay = 0.875 * self.avg_qdelay + 0.125 * q;
    }
}

impl Default for Illinois {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Illinois {
    fn on_ack(&mut self, sig: &AckSignals) {
        self.observe_delay(sig.queuing_delay);
        for _ in 0..sig.newly_acked {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
            } else {
                self.cwnd += self.alpha() / self.cwnd;
            }
        }
        self.cwnd = clamp_cwnd(self.cwnd);
    }

    fn on_loss(&mut self, _now: Time) {
        let beta = self.beta();
        self.cwnd = clamp_cwnd(self.cwnd * (1.0 - beta));
        self.ssthresh = self.cwnd;
    }

    fn on_timeout(&mut self, _now: Time) {
        self.ssthresh = clamp_cwnd(self.cwnd / 2.0);
        self.cwnd = 1.0;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "Illinois"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::sig;
    use super::*;

    #[test]
    fn low_delay_uses_aggressive_alpha() {
        let mut cc = Illinois::new();
        cc.on_loss(Time::ZERO); // exit slow start
                                // Establish a delay history with one congested sample, then
                                // low-delay samples pull the average down.
        cc.on_ack(&sig(0, 1000, 100, false));
        for i in 0..200 {
            cc.on_ack(&sig(i * 100, 101, 100, false));
        }
        assert!(cc.alpha() > 5.0, "alpha {}", cc.alpha());
        assert!((cc.beta() - BETA_MIN).abs() < 1e-9);
    }

    #[test]
    fn high_delay_uses_conservative_alpha_and_larger_beta() {
        let mut cc = Illinois::new();
        cc.on_loss(Time::ZERO);
        for i in 0..200 {
            cc.on_ack(&sig(i * 100, 1100, 100, false)); // 1 ms queuing
        }
        assert!(cc.alpha() < 1.0, "alpha {}", cc.alpha());
        assert!(cc.beta() > 0.4, "beta {}", cc.beta());
    }

    #[test]
    fn loss_decrease_uses_current_beta() {
        let mut cc = Illinois::new();
        cc.on_loss(Time::ZERO);
        for i in 0..100 {
            cc.on_ack(&sig(i * 100, 101, 100, false));
        }
        let w = cc.cwnd();
        let beta = cc.beta();
        cc.on_loss(Time::ZERO);
        assert!((cc.cwnd() - w * (1.0 - beta)).abs() < 1e-9);
    }

    #[test]
    fn alpha_is_max_before_any_delay_history() {
        assert_eq!(Illinois::new().alpha(), ALPHA_MAX);
    }
}
