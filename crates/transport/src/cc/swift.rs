//! Swift (Kumar et al., SIGCOMM 2020): delay-target congestion control.
//!
//! The sender compares the measured queuing delay against a target; below
//! target it increases additively, above target it decreases
//! multiplicatively in proportion to the overshoot, clamped by a maximum
//! decrease factor, at most once per RTT. Under AQ the delay signal is the
//! switch-accumulated *virtual* queuing delay instead of the measured
//! end-to-end queuing delay (§3.3.2 of the AQ paper).

use super::{clamp_cwnd, AckSignals, CongestionControl};
use aq_netsim::time::{Duration, Time};

/// Additive increase per RTT (segments).
const AI: f64 = 1.0;
/// Multiplicative-decrease gain.
const BETA: f64 = 0.8;
/// Maximum fractional decrease in one RTT.
const MAX_MDF: f64 = 0.5;

/// Swift state.
#[derive(Debug, Clone)]
pub struct Swift {
    cwnd: f64,
    /// Target queuing delay.
    pub target: Duration,
    /// Earliest time another multiplicative decrease is permitted.
    next_decrease_at: Time,
}

impl Swift {
    /// A Swift instance aiming at `target` queuing delay.
    pub fn new(target: Duration) -> Swift {
        Swift {
            cwnd: 10.0,
            target,
            next_decrease_at: Time::ZERO,
        }
    }
}

impl CongestionControl for Swift {
    fn on_ack(&mut self, sig: &AckSignals) {
        let delay = sig.queuing_delay;
        if delay <= self.target {
            // Additive increase, spread across the ACKs of one window.
            if self.cwnd >= 1.0 {
                self.cwnd += AI * sig.newly_acked as f64 / self.cwnd;
            } else {
                self.cwnd += AI * sig.newly_acked as f64;
            }
        } else if sig.now >= self.next_decrease_at {
            let over = (delay.as_secs_f64() - self.target.as_secs_f64()) / delay.as_secs_f64();
            let factor = (1.0 - BETA * over).max(1.0 - MAX_MDF);
            self.cwnd *= factor;
            // At most one decrease per RTT.
            self.next_decrease_at = sig.now + sig.rtt;
        }
        self.cwnd = clamp_cwnd(self.cwnd);
    }

    fn on_loss(&mut self, now: Time) {
        if now >= self.next_decrease_at {
            self.cwnd = clamp_cwnd(self.cwnd * (1.0 - MAX_MDF));
            self.next_decrease_at = now + Duration::from_micros(50);
        }
    }

    fn on_timeout(&mut self, _now: Time) {
        self.cwnd = 1.0;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "Swift"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::sig;
    use super::*;

    fn swift() -> Swift {
        Swift::new(Duration::from_micros(50))
    }

    #[test]
    fn grows_below_target() {
        let mut cc = swift();
        let w0 = cc.cwnd();
        for i in 0..100 {
            // queuing delay 10us < 50us target
            cc.on_ack(&sig(i * 60, 60, 50, false));
        }
        assert!(cc.cwnd() > w0);
    }

    #[test]
    fn decreases_proportionally_above_target() {
        let mut cc = swift();
        // queuing delay 100us, target 50us: over = 0.5, factor = 0.6.
        cc.on_ack(&sig(1000, 150, 50, false));
        assert!((cc.cwnd() - 6.0).abs() < 1e-9, "cwnd {}", cc.cwnd());
    }

    #[test]
    fn at_most_one_decrease_per_rtt() {
        let mut cc = swift();
        cc.on_ack(&sig(1000, 150, 50, false));
        let w = cc.cwnd();
        // Immediately following over-target ACKs within the same RTT do
        // not decrease again.
        cc.on_ack(&sig(1010, 150, 50, false));
        cc.on_ack(&sig(1020, 150, 50, false));
        assert_eq!(cc.cwnd(), w);
        // After an RTT, the next decrease applies.
        cc.on_ack(&sig(1000 + 151, 150, 50, false));
        assert!(cc.cwnd() < w);
    }

    #[test]
    fn decrease_is_clamped_by_max_mdf() {
        let mut cc = swift();
        // Enormous overshoot: factor would be negative without the clamp.
        cc.on_ack(&sig(1000, 5050, 50, false));
        assert!((cc.cwnd() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn converges_near_target_under_delay_proportional_feedback() {
        // Close the loop: model queuing delay as proportional to cwnd
        // (20 us per segment beyond 1), target 100 us -> fixed point at
        // cwnd ~ 6.
        let mut cc = Swift::new(Duration::from_micros(100));
        let mut now = 0u64;
        for _ in 0..2000 {
            let qd = ((cc.cwnd() - 1.0).max(0.0) * 20.0) as u64;
            now += 50 + qd;
            cc.on_ack(&super::super::testutil::sig(now, 50 + qd, 50, false));
        }
        assert!(
            cc.cwnd() > 4.0 && cc.cwnd() < 8.0,
            "cwnd {} should hover near 6",
            cc.cwnd()
        );
    }
}
