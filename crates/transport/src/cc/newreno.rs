//! TCP NewReno (RFC 6582): slow start + AIMD congestion avoidance,
//! loss-driven.

use super::{clamp_cwnd, AckSignals, CongestionControl, MAX_CWND};
use aq_netsim::time::Time;

/// NewReno state.
#[derive(Debug, Clone)]
pub struct NewReno {
    cwnd: f64,
    ssthresh: f64,
}

impl NewReno {
    /// Initial window of 10 segments (RFC 6928), unbounded ssthresh.
    pub fn new() -> NewReno {
        NewReno {
            cwnd: 10.0,
            ssthresh: MAX_CWND,
        }
    }

    /// Whether the flow is in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl Default for NewReno {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for NewReno {
    fn on_ack(&mut self, sig: &AckSignals) {
        for _ in 0..sig.newly_acked {
            if self.in_slow_start() {
                self.cwnd += 1.0;
            } else {
                self.cwnd += 1.0 / self.cwnd;
            }
        }
        self.cwnd = clamp_cwnd(self.cwnd);
    }

    fn on_loss(&mut self, _now: Time) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = clamp_cwnd(self.ssthresh);
    }

    fn on_timeout(&mut self, _now: Time) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "NewReno"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::sig;
    use super::*;

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = NewReno::new();
        let w0 = cc.cwnd();
        // One ACK per outstanding segment: cwnd grows by 1 per ACK.
        for _ in 0..10 {
            cc.on_ack(&sig(100, 40, 40, false));
        }
        assert_eq!(cc.cwnd(), w0 + 10.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn congestion_avoidance_grows_one_segment_per_rtt() {
        let mut cc = NewReno::new();
        cc.on_loss(Time::ZERO); // leave slow start; cwnd = 5
        let w = cc.cwnd();
        let n = w.round() as u64;
        for _ in 0..n {
            cc.on_ack(&sig(100, 40, 40, false));
        }
        assert!((cc.cwnd() - (w + 1.0)).abs() < 0.1, "cwnd {}", cc.cwnd());
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn loss_halves_timeout_resets() {
        let mut cc = NewReno::new();
        for _ in 0..30 {
            cc.on_ack(&sig(100, 40, 40, false));
        }
        let w = cc.cwnd();
        cc.on_loss(Time::ZERO);
        assert!((cc.cwnd() - w / 2.0).abs() < 1e-9);
        cc.on_timeout(Time::ZERO);
        assert_eq!(cc.cwnd(), 1.0);
    }
}
