//! CUBIC (Ha, Rhee, Xu 2008 / RFC 8312): window growth follows a cubic
//! function of time since the last loss, with a TCP-friendly lower bound.

use super::{clamp_cwnd, AckSignals, CongestionControl, MAX_CWND};
use aq_netsim::time::{Duration, Time};

/// CUBIC's scaling constant (RFC 8312 §4.1).
const C: f64 = 0.4;
/// Multiplicative decrease factor (RFC 8312 §4.5).
const BETA: f64 = 0.7;

/// CUBIC state.
#[derive(Debug, Clone)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window size just before the last reduction.
    w_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<Time>,
    /// Time for the cubic to return to `w_max`.
    k: f64,
    /// Reno-equivalent window for the TCP-friendly region.
    w_est: f64,
    last_rtt: Duration,
}

impl Cubic {
    /// Initial window of 10 segments.
    pub fn new() -> Cubic {
        Cubic {
            cwnd: 10.0,
            ssthresh: MAX_CWND,
            w_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
            last_rtt: Duration::from_micros(100),
        }
    }

    fn enter_epoch(&mut self, now: Time) {
        self.epoch_start = Some(now);
        self.k = if self.cwnd < self.w_max {
            ((self.w_max - self.cwnd) / C).cbrt()
        } else {
            0.0
        };
        self.w_est = self.cwnd;
    }

    /// The cubic target window `W(t) = C(t−K)³ + w_max`.
    fn w_cubic(&self, t: f64) -> f64 {
        C * (t - self.k).powi(3) + self.w_max
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Cubic {
    fn on_ack(&mut self, sig: &AckSignals) {
        self.last_rtt = sig.rtt;
        if self.cwnd < self.ssthresh {
            self.cwnd = clamp_cwnd(self.cwnd + sig.newly_acked as f64);
            return;
        }
        if self.epoch_start.is_none() {
            self.enter_epoch(sig.now);
        }
        let t = (sig.now - self.epoch_start.expect("epoch set above")).as_secs_f64();
        let rtt = sig.rtt.as_secs_f64().max(1e-6);
        // TCP-friendly region estimate (RFC 8312 §4.2), grown per ACK.
        self.w_est += 3.0 * (1.0 - BETA) / (1.0 + BETA) * sig.newly_acked as f64 / self.cwnd;
        let target = self.w_cubic(t + rtt);
        let next = if target > self.cwnd {
            // Concave/convex region: approach the target within one RTT.
            self.cwnd + (target - self.cwnd) / self.cwnd * sig.newly_acked as f64
        } else {
            // At or past the plateau: minimal growth.
            self.cwnd + 0.01 * sig.newly_acked as f64 / self.cwnd
        };
        self.cwnd = clamp_cwnd(next.max(self.w_est));
    }

    fn on_loss(&mut self, _now: Time) {
        self.w_max = self.cwnd;
        self.cwnd = clamp_cwnd(self.cwnd * BETA);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
    }

    fn on_timeout(&mut self, _now: Time) {
        self.w_max = self.cwnd;
        self.ssthresh = clamp_cwnd(self.cwnd * BETA);
        self.cwnd = 1.0;
        self.epoch_start = None;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "CUBIC"
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::sig;
    use super::*;

    #[test]
    fn slow_start_until_first_loss() {
        let mut cc = Cubic::new();
        for _ in 0..20 {
            cc.on_ack(&sig(100, 50, 50, false));
        }
        assert_eq!(cc.cwnd(), 30.0);
    }

    #[test]
    fn loss_reduces_by_beta_and_sets_wmax() {
        let mut cc = Cubic::new();
        for _ in 0..90 {
            cc.on_ack(&sig(100, 50, 50, false));
        }
        let w = cc.cwnd();
        cc.on_loss(Time::from_millis(1));
        assert!((cc.cwnd() - w * BETA).abs() < 1e-9);
        assert_eq!(cc.w_max, w);
    }

    #[test]
    fn growth_is_slow_near_wmax_fast_far_from_it() {
        let mut cc = Cubic::new();
        for _ in 0..90 {
            cc.on_ack(&sig(0, 50, 50, false));
        }
        cc.on_loss(Time::from_millis(1));
        let w_after_loss = cc.cwnd();
        // Just after the loss (t small, below w_max): concave growth.
        let mut near = cc.clone();
        for i in 0..50 {
            near.on_ack(&sig(1_000 + i * 50, 50, 50, false));
        }
        let early_growth = near.cwnd() - w_after_loss;
        // Much later (t >> K ≈ 4.2 s here, convex region): the same number
        // of ACKs grows the window by more, and the window exceeds w_max.
        let mut far = near.clone();
        let last = far.cwnd();
        for i in 0..50 {
            far.on_ack(&sig(10_000_000 + i * 50, 50, 50, false));
        }
        let late_growth = far.cwnd() - last;
        assert!(
            late_growth > early_growth,
            "late {late_growth} vs early {early_growth}"
        );
        assert!(far.cwnd() > cc.w_max, "convex region should exceed w_max");
    }

    #[test]
    fn timeout_collapses_to_one_segment() {
        let mut cc = Cubic::new();
        for _ in 0..50 {
            cc.on_ack(&sig(100, 50, 50, false));
        }
        cc.on_timeout(Time::from_millis(2));
        assert_eq!(cc.cwnd(), 1.0);
    }
}
