//! Pluggable congestion control.
//!
//! Each algorithm consumes per-ACK signals ([`AckSignals`]) and maintains a
//! congestion window in segments. The five algorithms the paper evaluates
//! are implemented from their original definitions:
//!
//! | module      | algorithm   | signal            |
//! |-------------|-------------|-------------------|
//! | [`newreno`] | TCP NewReno | loss              |
//! | [`cubic`]   | CUBIC       | loss              |
//! | [`illinois`]| TCP-Illinois| loss + delay      |
//! | [`dctcp`]   | DCTCP       | ECN fraction      |
//! | [`swift`]   | Swift       | (virtual) delay   |
//! | [`bbr`]     | TCP BBR     | delivery rate + RTT (the §7 extension) |
//!
//! UDP is not a congestion control — unreactive senders live in
//! [`crate::udp`].

pub mod bbr;
pub mod cubic;
pub mod dctcp;
pub mod illinois;
pub mod newreno;
pub mod swift;

use aq_netsim::time::{Duration, Time};

/// Signals delivered to the congestion control for one received ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckSignals {
    /// Arrival time of the ACK.
    pub now: Time,
    /// Segments newly acknowledged cumulatively by this ACK.
    pub newly_acked: u64,
    /// RTT sampled from the echoed timestamp.
    pub rtt: Duration,
    /// Lowest RTT seen so far on the flow (propagation + serialization).
    pub min_rtt: Duration,
    /// The *queuing delay* signal: under physical queues this is
    /// `rtt − min_rtt`; when the flow is configured to use AQ virtual
    /// delay, it is the echoed accumulated `A(k)/R` instead (§3.3.2).
    pub queuing_delay: Duration,
    /// The acknowledged segment carried an ECN CE mark.
    pub ecn_echo: bool,
    /// Highest sequence sent so far plus one (for windowed accounting,
    /// e.g. DCTCP's per-RTT α update).
    pub snd_nxt: u64,
    /// Cumulative ack point after applying this ACK.
    pub cum_ack: u64,
}

/// A congestion-control algorithm driving one flow's window.
pub trait CongestionControl: Send {
    /// Process one ACK.
    fn on_ack(&mut self, sig: &AckSignals);

    /// A loss was detected by fast retransmit (at most once per window).
    fn on_loss(&mut self, now: Time);

    /// The retransmission timer expired.
    fn on_timeout(&mut self, now: Time);

    /// Current congestion window in segments (fractional windows allowed;
    /// the sender floors the send allowance).
    fn cwnd(&self) -> f64;

    /// Algorithm name for reports.
    fn name(&self) -> &'static str;
}

/// Lower clamp every algorithm applies to its window.
pub const MIN_CWND: f64 = 1.0;
/// Upper clamp (segments) — generous enough to fill any simulated pipe.
pub const MAX_CWND: f64 = 4096.0;

/// Clamp a window into the supported range.
pub fn clamp_cwnd(w: f64) -> f64 {
    w.clamp(MIN_CWND, MAX_CWND)
}

/// Factory enum used by flow specs to instantiate algorithms without
/// generics at the host layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CcAlgo {
    /// TCP NewReno (drop-based).
    NewReno,
    /// CUBIC (drop-based).
    Cubic,
    /// TCP-Illinois (loss-primary, delay-adaptive AIMD).
    Illinois,
    /// DCTCP (ECN-based) with the marking-fraction gain `g = 1/16`.
    Dctcp,
    /// Swift (delay-based) with the given target queuing delay.
    Swift {
        /// Target end-to-end queuing delay.
        target: Duration,
    },
    /// TCP BBR (model-based: max delivery rate × min RTT). The paper's §7
    /// names BBR as accommodated by AQ because the abstraction preserves
    /// both signals it consumes.
    Bbr,
}

impl CcAlgo {
    /// Instantiate the algorithm.
    pub fn build(&self) -> Box<dyn CongestionControl> {
        match *self {
            CcAlgo::NewReno => Box::new(newreno::NewReno::new()),
            CcAlgo::Cubic => Box::new(cubic::Cubic::new()),
            CcAlgo::Illinois => Box::new(illinois::Illinois::new()),
            CcAlgo::Dctcp => Box::new(dctcp::Dctcp::new()),
            CcAlgo::Swift { target } => Box::new(swift::Swift::new(target)),
            CcAlgo::Bbr => Box::new(bbr::Bbr::new()),
        }
    }

    /// Whether flows under this algorithm negotiate ECN.
    pub fn ecn_capable(&self) -> bool {
        matches!(self, CcAlgo::Dctcp)
    }

    /// Whether this algorithm consumes the delay signal (and should read
    /// AQ virtual delay when the network provides it).
    pub fn delay_based(&self) -> bool {
        matches!(self, CcAlgo::Swift { .. })
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CcAlgo::NewReno => "NewReno",
            CcAlgo::Cubic => "CUBIC",
            CcAlgo::Illinois => "Illinois",
            CcAlgo::Dctcp => "DCTCP",
            CcAlgo::Swift { .. } => "Swift",
            CcAlgo::Bbr => "BBR",
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// An ACK with the given delay characteristics acking one segment.
    pub fn sig(now_us: u64, rtt_us: u64, min_rtt_us: u64, ecn: bool) -> AckSignals {
        AckSignals {
            now: Time::from_micros(now_us),
            newly_acked: 1,
            rtt: Duration::from_micros(rtt_us),
            min_rtt: Duration::from_micros(min_rtt_us),
            queuing_delay: Duration::from_micros(rtt_us - min_rtt_us),
            ecn_echo: ecn,
            snd_nxt: 0,
            cum_ack: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_algorithm() {
        for algo in [
            CcAlgo::NewReno,
            CcAlgo::Cubic,
            CcAlgo::Illinois,
            CcAlgo::Dctcp,
            CcAlgo::Swift {
                target: Duration::from_micros(50),
            },
            CcAlgo::Bbr,
        ] {
            let cc = algo.build();
            assert!(cc.cwnd() >= MIN_CWND);
            assert_eq!(cc.name(), algo.name());
        }
    }

    #[test]
    fn ecn_capability_only_for_dctcp() {
        assert!(CcAlgo::Dctcp.ecn_capable());
        assert!(!CcAlgo::Cubic.ecn_capable());
        assert!(!CcAlgo::Swift {
            target: Duration::from_micros(50)
        }
        .ecn_capable());
    }

    #[test]
    fn clamping() {
        assert_eq!(clamp_cwnd(0.0), MIN_CWND);
        assert_eq!(clamp_cwnd(1e9), MAX_CWND);
        assert_eq!(clamp_cwnd(10.0), 10.0);
    }
}
