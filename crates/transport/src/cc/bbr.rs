//! TCP BBR (Cardwell et al. 2016), window-based model.
//!
//! BBR estimates the bottleneck bandwidth (windowed-max delivery rate) and
//! the propagation RTT (windowed-min), and holds
//! `cwnd = gain × BtlBw × RTprop`. The paper's §7 argues AQ accommodates
//! BBR because the abstraction exposes exactly the two signals BBR needs —
//! arrival rate (through its own delivery-rate samples, which under an AQ
//! converge to the allocated rate) and delay. This model keeps BBR's
//! state machine (Startup → Drain → steady ProbeBW gain cycling) while
//! driving sends with a congestion window rather than a paced rate, which
//! is the standard simplification for window-clocked simulators.

use super::{clamp_cwnd, AckSignals, CongestionControl};
use aq_netsim::time::{Duration, Time};

/// Startup window gain (2/ln 2).
const STARTUP_GAIN: f64 = 2.885;
/// Drain gain — inverse of startup, empties the queue built during it.
const DRAIN_GAIN: f64 = 1.0 / 2.885;
/// ProbeBW gain cycle (one step per RTT).
const PROBE_CYCLE: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// Rounds of <25 % bandwidth growth that end Startup.
const STARTUP_FULL_BW_ROUNDS: u32 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Startup,
    Drain,
    ProbeBw,
}

/// BBR state.
#[derive(Debug, Clone)]
pub struct Bbr {
    cwnd: f64,
    mode: Mode,
    /// Recent delivery-rate samples (segments/sec), one per RTT; the
    /// bandwidth estimate is their max (BBR's 10-round windowed max).
    bw_samples: std::collections::VecDeque<f64>,
    /// Cached max of `bw_samples`.
    btl_bw: f64,
    /// Windowed-min RTT.
    rt_prop: Duration,
    /// Bandwidth plateau detection.
    full_bw: f64,
    full_bw_rounds: u32,
    /// ProbeBW cycle position, advanced once per RTT.
    cycle_index: usize,
    next_cycle_at: Time,
    /// Delivery-rate sampling.
    delivered: u64,
    last_sample_delivered: u64,
    last_sample_at: Time,
}

impl Bbr {
    /// Fresh BBR in Startup.
    pub fn new() -> Bbr {
        Bbr {
            cwnd: 10.0,
            mode: Mode::Startup,
            bw_samples: std::collections::VecDeque::new(),
            btl_bw: 0.0,
            rt_prop: Duration::from_millis(10),
            full_bw: 0.0,
            full_bw_rounds: 0,
            cycle_index: 0,
            next_cycle_at: Time::ZERO,
            delivered: 0,
            last_sample_delivered: 0,
            last_sample_at: Time::ZERO,
        }
    }

    /// Current bottleneck-bandwidth estimate (bytes/sec).
    pub fn btl_bw_bytes_per_sec(&self) -> f64 {
        self.btl_bw
    }

    /// Current mode name (diagnostics).
    pub fn mode_name(&self) -> &'static str {
        match self.mode {
            Mode::Startup => "Startup",
            Mode::Drain => "Drain",
            Mode::ProbeBw => "ProbeBW",
        }
    }

    fn bdp_segments(&self) -> f64 {
        // Segment size is normalized out: delivery sampled in segments.
        self.btl_bw * self.rt_prop.as_secs_f64()
    }

    fn gain(&self) -> f64 {
        match self.mode {
            Mode::Startup => STARTUP_GAIN,
            Mode::Drain => DRAIN_GAIN,
            Mode::ProbeBw => PROBE_CYCLE[self.cycle_index],
        }
    }
}

impl Default for Bbr {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Bbr {
    fn on_ack(&mut self, sig: &AckSignals) {
        self.delivered += sig.newly_acked;
        self.rt_prop = self.rt_prop.min(sig.rtt.max(Duration::from_micros(1)));
        // Delivery-rate sample once per ~RTT, in segments/sec.
        let elapsed = sig.now - self.last_sample_at;
        if elapsed >= self.rt_prop && elapsed > Duration::ZERO {
            let delta = (self.delivered - self.last_sample_delivered) as f64;
            let rate = delta / elapsed.as_secs_f64();
            self.last_sample_delivered = self.delivered;
            self.last_sample_at = sig.now;
            // 10-round windowed max (expiring old samples lets the
            // estimate track reductions such as an AQ re-division).
            self.bw_samples.push_back(rate);
            if self.bw_samples.len() > 10 {
                self.bw_samples.pop_front();
            }
            self.btl_bw = self.bw_samples.iter().copied().fold(0.0, f64::max);
            match self.mode {
                Mode::Startup => {
                    if self.btl_bw < self.full_bw * 1.25 {
                        self.full_bw_rounds += 1;
                        if self.full_bw_rounds >= STARTUP_FULL_BW_ROUNDS {
                            self.mode = Mode::Drain;
                        }
                    } else {
                        self.full_bw = self.btl_bw;
                        self.full_bw_rounds = 0;
                    }
                }
                Mode::Drain => {
                    // Queue drained once inflight fits the BDP.
                    if (self.cwnd) <= self.bdp_segments().max(4.0) {
                        self.mode = Mode::ProbeBw;
                        self.next_cycle_at = sig.now + self.rt_prop;
                    }
                }
                Mode::ProbeBw => {
                    if sig.now >= self.next_cycle_at {
                        self.cycle_index = (self.cycle_index + 1) % PROBE_CYCLE.len();
                        self.next_cycle_at = sig.now + self.rt_prop;
                    }
                }
            }
        }
        let target = match self.mode {
            // Startup doubles per RTT (slow-start pace; the 2.89 pacing
            // gain of rate-based BBR corresponds to the same exponential
            // envelope in a window-clocked model).
            Mode::Startup => self.cwnd + sig.newly_acked as f64,
            _ => (self.gain() * self.bdp_segments()).max(4.0),
        };
        // Move toward the target without collapsing mid-flight.
        self.cwnd = clamp_cwnd(if target > self.cwnd {
            self.cwnd + (target - self.cwnd).min(sig.newly_acked as f64)
        } else {
            target.max(self.cwnd - sig.newly_acked as f64)
        });
    }

    fn on_loss(&mut self, _now: Time) {
        // BBR does not treat loss as a primary signal; the model-based
        // window already bounds inflight. (Real BBRv1 behaves the same.)
    }

    fn on_timeout(&mut self, _now: Time) {
        self.cwnd = 4.0;
        self.mode = Mode::Startup;
        self.full_bw = 0.0;
        self.full_bw_rounds = 0;
        self.bw_samples.clear();
        self.btl_bw = 0.0;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "BBR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Closed loop against a fixed-capacity path: `cap` segments/sec, base
    /// RTT `base_us`, FIFO queueing when inflight exceeds the BDP.
    fn converge(cap: f64, base_us: u64, acks: usize) -> Bbr {
        let mut cc = Bbr::new();
        let mut now = 0u64;
        let mut delivered_credit = 0.0;
        for _ in 0..acks {
            let bdp = cap * base_us as f64 / 1e6;
            let q = (cc.cwnd() - bdp).max(0.0);
            let rtt_us = base_us + (q / cap * 1e6) as u64;
            now += (1e6 / cap) as u64; // one segment served per 1/cap sec
            delivered_credit += 1.0;
            let newly = delivered_credit as u64;
            delivered_credit -= newly as f64;
            cc.on_ack(&AckSignals {
                now: Time::from_micros(now),
                newly_acked: newly,
                rtt: Duration::from_micros(rtt_us),
                min_rtt: Duration::from_micros(base_us),
                queuing_delay: Duration::from_micros(rtt_us - base_us),
                ecn_echo: false,
                snd_nxt: 0,
                cum_ack: 0,
            });
        }
        cc
    }

    #[test]
    fn startup_grows_exponentially_then_exits() {
        let cc = converge(100_000.0, 100, 4_000);
        assert_ne!(cc.mode_name(), "Startup", "plateau must end startup");
        assert!(cc.btl_bw_bytes_per_sec() > 50_000.0, "bw {}", cc.btl_bw);
    }

    #[test]
    fn steady_state_window_tracks_the_bdp() {
        // 100k seg/s at 100 us base RTT: BDP = 10 segments.
        let cc = converge(100_000.0, 100, 20_000);
        assert_eq!(cc.mode_name(), "ProbeBW");
        let bdp = 10.0;
        assert!(
            cc.cwnd() >= 0.7 * bdp && cc.cwnd() <= 2.0 * bdp,
            "cwnd {} should track BDP {bdp}",
            cc.cwnd()
        );
    }

    #[test]
    fn loss_is_not_a_primary_signal() {
        let mut cc = converge(100_000.0, 100, 10_000);
        let w = cc.cwnd();
        cc.on_loss(Time::from_millis(100));
        assert_eq!(cc.cwnd(), w, "BBR ignores isolated loss");
    }

    #[test]
    fn timeout_restarts_the_model() {
        let mut cc = converge(100_000.0, 100, 10_000);
        cc.on_timeout(Time::from_millis(100));
        assert_eq!(cc.cwnd(), 4.0);
        assert_eq!(cc.mode_name(), "Startup");
    }

    #[test]
    fn probe_cycle_oscillates_the_window() {
        let mut cc = converge(100_000.0, 100, 20_000);
        assert_eq!(cc.mode_name(), "ProbeBW");
        let mut lo = f64::MAX;
        let mut hi = 0.0f64;
        let mut now = 10_000_000u64;
        for _ in 0..5_000 {
            now += 10;
            cc.on_ack(&AckSignals {
                now: Time::from_micros(now),
                newly_acked: 1,
                rtt: Duration::from_micros(110),
                min_rtt: Duration::from_micros(100),
                queuing_delay: Duration::from_micros(10),
                ecn_echo: false,
                snd_nxt: 0,
                cum_ack: 0,
            });
            lo = lo.min(cc.cwnd());
            hi = hi.max(cc.cwnd());
        }
        assert!(hi / lo > 1.2, "gain cycling should oscillate: {lo}..{hi}");
    }
}
