//! DCTCP (Alizadeh et al., SIGCOMM 2010): ECN-fraction-proportional
//! multiplicative decrease.
//!
//! The sender maintains `α`, an EWMA of the fraction of acknowledged
//! segments carrying an ECN echo, updated once per window of data
//! (`g = 1/16`), and on windows containing any mark reduces
//! `cwnd ← cwnd · (1 − α/2)`. Growth is standard slow start / Reno
//! congestion avoidance.

use super::{clamp_cwnd, AckSignals, CongestionControl, MAX_CWND};
use aq_netsim::time::Time;

/// EWMA gain for the marked fraction (the paper's recommended 1/16).
const G: f64 = 1.0 / 16.0;

/// DCTCP state.
#[derive(Debug, Clone)]
pub struct Dctcp {
    cwnd: f64,
    ssthresh: f64,
    /// EWMA of the marked fraction.
    pub alpha: f64,
    /// Segments acked in the current observation window.
    acked_in_window: u64,
    /// Of which, carried an ECN echo.
    marked_in_window: u64,
    /// The window ends when `cum_ack` passes this sequence.
    window_end: u64,
}

impl Dctcp {
    /// Initial window of 10 segments; α starts at zero.
    pub fn new() -> Dctcp {
        Dctcp {
            cwnd: 10.0,
            ssthresh: MAX_CWND,
            alpha: 0.0,
            acked_in_window: 0,
            marked_in_window: 0,
            window_end: 0,
        }
    }
}

impl Default for Dctcp {
    fn default() -> Self {
        Self::new()
    }
}

impl CongestionControl for Dctcp {
    fn on_ack(&mut self, sig: &AckSignals) {
        self.acked_in_window += sig.newly_acked;
        if sig.ecn_echo {
            self.marked_in_window += sig.newly_acked.max(1);
            // A mark ends slow start immediately (per the DCTCP paper the
            // first mark is treated like conventional ECN).
            if self.cwnd < self.ssthresh {
                self.ssthresh = self.cwnd;
            }
        }
        // Window growth: slow start or Reno-style.
        for _ in 0..sig.newly_acked {
            if self.cwnd < self.ssthresh {
                self.cwnd += 1.0;
            } else {
                self.cwnd += 1.0 / self.cwnd;
            }
        }
        self.cwnd = clamp_cwnd(self.cwnd);
        // One observation window ≈ one RTT of data.
        if sig.cum_ack >= self.window_end {
            if self.acked_in_window > 0 {
                let f = self.marked_in_window as f64 / self.acked_in_window as f64;
                self.alpha = (1.0 - G) * self.alpha + G * f;
                if self.marked_in_window > 0 {
                    self.cwnd = clamp_cwnd(self.cwnd * (1.0 - self.alpha / 2.0));
                    self.ssthresh = self.cwnd;
                }
            }
            self.acked_in_window = 0;
            self.marked_in_window = 0;
            self.window_end = sig.snd_nxt;
        }
    }

    fn on_loss(&mut self, _now: Time) {
        // DCTCP falls back to conventional halving on loss.
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = clamp_cwnd(self.ssthresh);
    }

    fn on_timeout(&mut self, _now: Time) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        self.cwnd = 1.0;
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &'static str {
        "DCTCP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_netsim::time::{Duration, Time};

    fn ack(newly: u64, ecn: bool, cum: u64, nxt: u64) -> AckSignals {
        AckSignals {
            now: Time::from_micros(100),
            newly_acked: newly,
            rtt: Duration::from_micros(60),
            min_rtt: Duration::from_micros(50),
            queuing_delay: Duration::from_micros(10),
            ecn_echo: ecn,
            snd_nxt: nxt,
            cum_ack: cum,
        }
    }

    #[test]
    fn alpha_converges_to_marking_fraction() {
        let mut cc = Dctcp::new();
        // 50% of segments marked, over many windows of 10 segments each.
        let mut cum = 0;
        for w in 0..400 {
            for i in 0..10u64 {
                cum += 1;
                let marked = i % 2 == 0;
                // window_end logic: pass snd_nxt well ahead.
                cc.on_ack(&ack(1, marked, cum, cum + 10));
            }
            let _ = w;
        }
        assert!(
            (cc.alpha - 0.5).abs() < 0.1,
            "alpha {} should approach 0.5",
            cc.alpha
        );
    }

    #[test]
    fn unmarked_windows_do_not_reduce() {
        let mut cc = Dctcp::new();
        cc.on_loss(Time::ZERO); // exit slow start deterministically
        let w0 = cc.cwnd();
        let mut cum = 0;
        for _ in 0..50 {
            cum += 1;
            cc.on_ack(&ack(1, false, cum, cum + 5));
        }
        assert!(cc.cwnd() > w0);
        assert_eq!(cc.alpha, 0.0);
    }

    #[test]
    fn fully_marked_windows_halve_eventually() {
        let mut cc = Dctcp::new();
        let mut cum = 0;
        // Persistent 100% marking: alpha -> 1, decrease -> cwnd/2 per RTT;
        // combined with +1/window increase, cwnd must collapse toward min.
        for _ in 0..600 {
            cum += 1;
            cc.on_ack(&ack(1, true, cum, cum + 2));
        }
        assert!(cc.alpha > 0.9, "alpha {}", cc.alpha);
        assert!(cc.cwnd() < 4.0, "cwnd {}", cc.cwnd());
    }

    #[test]
    fn first_mark_exits_slow_start() {
        let mut cc = Dctcp::new();
        assert!(cc.cwnd() < cc.ssthresh);
        cc.on_ack(&ack(1, true, 1, 20));
        assert!(cc.ssthresh <= cc.cwnd());
    }
}
