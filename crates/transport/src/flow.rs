//! Flow specifications.
//!
//! A [`FlowSpec`] describes one unidirectional flow: who talks to whom, how
//! much, starting when, under which transport (a TCP-like reliable flow
//! with one of the five CC algorithms, or unreactive UDP), which AQ id tags
//! its packets carry, and which delay signal a delay-based CC consumes.

use crate::cc::CcAlgo;
use aq_netsim::ids::{EntityId, FlowId, NodeId};
use aq_netsim::packet::{AqTag, MSS};
use aq_netsim::time::{Rate, Time};

/// Transport kind for a flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowKind {
    /// Reliable, window-based transport under the given congestion control.
    Tcp(CcAlgo),
    /// Unreliable constant-bit-rate datagrams at the given rate — the
    /// "aggressive UDP application" of the paper's experiments.
    Udp {
        /// Sending rate (paced; typically the link capacity).
        rate: Rate,
    },
}

/// Where a delay-based CC reads its queuing-delay signal from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DelaySignal {
    /// `rtt − min_rtt` measured end to end (physical queues).
    #[default]
    MeasuredRtt,
    /// The AQ-accumulated virtual queuing delay echoed by the receiver
    /// (§3.3.2).
    VirtualDelay,
}

/// Full description of one flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Unique flow id (assigned by the workload/scenario generator).
    pub flow: FlowId,
    /// The entity this flow belongs to (unit of bandwidth guarantee).
    pub entity: EntityId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Payload bytes to transfer; `None` for a long-lived flow.
    pub bytes: Option<u64>,
    /// Absolute start time.
    pub start: Time,
    /// Transport kind.
    pub kind: FlowKind,
    /// AQ id matched at switch ingress pipelines (0 = none).
    pub aq_ingress: AqTag,
    /// AQ id matched at switch egress pipelines (0 = none).
    pub aq_egress: AqTag,
    /// Delay-signal source for delay-based CC.
    pub delay_signal: DelaySignal,
    /// Segment payload size.
    pub mss: u32,
    /// Closed-loop chaining: start this flow when `after` completes
    /// (sender side) instead of at `start`. Models a VM worker replaying
    /// its trace entries back to back.
    pub after: Option<FlowId>,
}

impl FlowSpec {
    /// A long-lived TCP flow with default MSS and measured-RTT delay.
    pub fn long_tcp(
        flow: FlowId,
        entity: EntityId,
        src: NodeId,
        dst: NodeId,
        cc: CcAlgo,
    ) -> FlowSpec {
        FlowSpec {
            flow,
            entity,
            src,
            dst,
            bytes: None,
            start: Time::ZERO,
            kind: FlowKind::Tcp(cc),
            aq_ingress: AqTag::NONE,
            aq_egress: AqTag::NONE,
            delay_signal: DelaySignal::MeasuredRtt,
            mss: MSS,
            after: None,
        }
    }

    /// A finite TCP transfer of `bytes` starting at `start`.
    pub fn sized_tcp(
        flow: FlowId,
        entity: EntityId,
        src: NodeId,
        dst: NodeId,
        cc: CcAlgo,
        bytes: u64,
        start: Time,
    ) -> FlowSpec {
        FlowSpec {
            bytes: Some(bytes),
            start,
            ..FlowSpec::long_tcp(flow, entity, src, dst, cc)
        }
    }

    /// A long-lived paced UDP flow at `rate`.
    pub fn long_udp(
        flow: FlowId,
        entity: EntityId,
        src: NodeId,
        dst: NodeId,
        rate: Rate,
    ) -> FlowSpec {
        FlowSpec {
            kind: FlowKind::Udp { rate },
            ..FlowSpec::long_tcp(flow, entity, src, dst, CcAlgo::NewReno)
        }
    }

    /// Tag every packet of this flow with AQ ids (builder style).
    pub fn with_aq(mut self, ingress: AqTag, egress: AqTag) -> FlowSpec {
        self.aq_ingress = ingress;
        self.aq_egress = egress;
        self
    }

    /// Use the AQ virtual delay as the delay signal (builder style).
    pub fn with_virtual_delay(mut self) -> FlowSpec {
        self.delay_signal = DelaySignal::VirtualDelay;
        self
    }

    /// Chain behind another flow (builder style): this flow starts when
    /// `prev` completes rather than at an absolute time.
    pub fn chained_after(mut self, prev: FlowId) -> FlowSpec {
        self.after = Some(prev);
        self
    }

    /// Number of segments for a finite flow (`None` for long-lived).
    pub fn total_segments(&self) -> Option<u64> {
        self.bytes.map(|b| b.div_ceil(self.mss as u64).max(1))
    }

    /// Payload size of segment `seq`.
    pub fn segment_payload(&self, seq: u64) -> u32 {
        match self.bytes {
            None => self.mss,
            Some(total) => {
                let sent_before = seq * self.mss as u64;
                let remaining = total.saturating_sub(sent_before);
                remaining.min(self.mss as u64) as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(bytes: u64) -> FlowSpec {
        FlowSpec::sized_tcp(
            FlowId(1),
            EntityId(1),
            NodeId(0),
            NodeId(1),
            CcAlgo::Cubic,
            bytes,
            Time::ZERO,
        )
    }

    #[test]
    fn segment_count_rounds_up() {
        assert_eq!(spec(1).total_segments(), Some(1));
        assert_eq!(spec(1000).total_segments(), Some(1));
        assert_eq!(spec(1001).total_segments(), Some(2));
        assert_eq!(spec(2500).total_segments(), Some(3));
    }

    #[test]
    fn last_segment_is_partial() {
        let s = spec(2500);
        assert_eq!(s.segment_payload(0), 1000);
        assert_eq!(s.segment_payload(1), 1000);
        assert_eq!(s.segment_payload(2), 500);
    }

    #[test]
    fn long_lived_flow_has_no_end() {
        let s = FlowSpec::long_tcp(
            FlowId(1),
            EntityId(1),
            NodeId(0),
            NodeId(1),
            CcAlgo::NewReno,
        );
        assert_eq!(s.total_segments(), None);
        assert_eq!(s.segment_payload(12345), MSS);
    }

    #[test]
    fn builders_set_tags_and_delay_signal() {
        let s = spec(1000).with_aq(AqTag(3), AqTag(4)).with_virtual_delay();
        assert_eq!(s.aq_ingress, AqTag(3));
        assert_eq!(s.aq_egress, AqTag(4));
        assert_eq!(s.delay_signal, DelaySignal::VirtualDelay);
    }
}
