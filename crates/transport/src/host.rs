//! The per-host transport endpoint.
//!
//! A [`TransportHost`] is the [`HostApp`] installed on every end host. It
//! owns the host's sending flows (TCP senders and paced UDP sources),
//! creates receiver state on demand for incoming flows, schedules flow
//! start times, demultiplexes ACKs, and manages retransmission and pacing
//! timers on top of the simulator's one-shot timer facility.

use crate::flow::{FlowKind, FlowSpec};
use crate::receiver::ReceiverFlow;
use crate::sender::SenderFlow;
use crate::udp::UdpSender;
use aq_netsim::ids::{FlowId, NodeId};
use aq_netsim::node::{HostApp, HostCtx};
use aq_netsim::packet::{Packet, TransportHeader};
use std::collections::BTreeMap;

const TOKEN_START: u64 = 1 << 56;
const TOKEN_RTO: u64 = 2 << 56;
const TOKEN_PACE: u64 = 3 << 56;
const TOKEN_ARG: u64 = (1 << 56) - 1;

/// The transport endpoint app for one host.
pub struct TransportHost {
    node: NodeId,
    scheduled: Vec<Option<FlowSpec>>,
    /// Closed-loop chains: when the key flow completes, start these
    /// scheduled indices.
    chains: BTreeMap<FlowId, Vec<usize>>,
    senders: BTreeMap<FlowId, SenderFlow>,
    udp: BTreeMap<FlowId, UdpSender>,
    receivers: BTreeMap<FlowId, ReceiverFlow>,
}

impl TransportHost {
    /// An endpoint for `node` with no flows.
    pub fn new(node: NodeId) -> TransportHost {
        TransportHost {
            node,
            scheduled: Vec::new(),
            chains: BTreeMap::new(),
            senders: BTreeMap::new(),
            udp: BTreeMap::new(),
            receivers: BTreeMap::new(),
        }
    }

    /// Schedule a flow this host will send. Must be called before the
    /// simulation starts.
    ///
    /// # Panics
    /// Panics if the spec's source is a different node.
    pub fn add_flow(&mut self, spec: FlowSpec) {
        assert_eq!(
            spec.src, self.node,
            "flow {} sources from {} but was added to {}",
            spec.flow, spec.src, self.node
        );
        let idx = self.scheduled.len();
        if let Some(prev) = spec.after {
            self.chains.entry(prev).or_default().push(idx);
        }
        self.scheduled.push(Some(spec));
    }

    /// Sender state of a flow this host originates (for post-run
    /// inspection).
    pub fn sender(&self, flow: FlowId) -> Option<&SenderFlow> {
        self.senders.get(&flow)
    }

    /// Receiver state of a flow this host terminates.
    pub fn receiver(&self, flow: FlowId) -> Option<&ReceiverFlow> {
        self.receivers.get(&flow)
    }

    /// UDP sender state of a flow this host originates.
    pub fn udp_sender(&self, flow: FlowId) -> Option<&UdpSender> {
        self.udp.get(&flow)
    }

    /// All active sender flow-ids (diagnostics).
    pub fn sender_flows(&self) -> impl Iterator<Item = &FlowId> {
        self.senders.keys()
    }

    fn arm_rto_if_needed(ctx: &mut HostCtx<'_>, s: &mut SenderFlow, flow: FlowId) {
        if let Some(d) = s.rto_deadline {
            let need = match s.armed_rto {
                None => true,
                Some(armed) => d < armed,
            };
            if need {
                ctx.arm_timer_at(d, TOKEN_RTO | flow.0 as u64);
                s.armed_rto = Some(d);
            }
        }
    }

    /// Launch the flows chained behind a just-completed one.
    fn start_chained(&mut self, ctx: &mut HostCtx<'_>, done: FlowId) {
        let Some(idxs) = self.chains.remove(&done) else {
            return;
        };
        for idx in idxs {
            self.start_flow(ctx, idx);
        }
    }

    fn start_flow(&mut self, ctx: &mut HostCtx<'_>, idx: usize) {
        let Some(spec) = self.scheduled[idx].take() else {
            return;
        };
        ctx.stats
            .register_flow(spec.flow, spec.entity, spec.bytes.unwrap_or(0), ctx.now);
        let flow = spec.flow;
        match spec.kind {
            FlowKind::Tcp(_) => {
                let mut s = SenderFlow::new(spec);
                s.start(ctx);
                Self::arm_rto_if_needed(ctx, &mut s, flow);
                self.senders.insert(flow, s);
            }
            FlowKind::Udp { .. } => {
                let mut u = UdpSender::new(spec);
                if let Some(next) = u.send_one(ctx) {
                    ctx.arm_timer_in(next, TOKEN_PACE | flow.0 as u64);
                }
                self.udp.insert(flow, u);
            }
        }
    }
}

impl HostApp for TransportHost {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        for (idx, spec) in self.scheduled.iter().enumerate() {
            let spec = spec.as_ref().expect("not yet started");
            if spec.after.is_none() {
                ctx.arm_timer_at(spec.start, TOKEN_START | idx as u64);
            }
        }
    }

    fn on_packet(&mut self, ctx: &mut HostCtx<'_>, pkt: Packet) {
        match pkt.transport {
            TransportHeader::Ack {
                cum_ack,
                sack_hi,
                this_seq,
                ecn_echo,
                vdelay_echo_ns,
                ts_echo,
                fin_acked,
            } => {
                let finished = if let Some(s) = self.senders.get_mut(&pkt.flow) {
                    s.on_ack(
                        ctx,
                        cum_ack,
                        sack_hi,
                        this_seq,
                        ecn_echo,
                        vdelay_echo_ns,
                        ts_echo,
                        fin_acked,
                    );
                    Self::arm_rto_if_needed(ctx, s, pkt.flow);
                    s.finished
                } else {
                    false
                };
                if finished {
                    self.start_chained(ctx, pkt.flow);
                }
            }
            TransportHeader::Data { .. } => {
                let r = self
                    .receivers
                    .entry(pkt.flow)
                    .or_insert_with(|| ReceiverFlow::new(pkt.flow));
                r.on_data(ctx, &pkt);
            }
            TransportHeader::Datagram => {
                // Delivery stats were recorded by the simulator; datagrams
                // need no receiver state.
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
        let arg = token & TOKEN_ARG;
        match token & !TOKEN_ARG {
            TOKEN_START => self.start_flow(ctx, arg as usize),
            TOKEN_RTO => {
                let flow = FlowId(arg as u32);
                if let Some(s) = self.senders.get_mut(&flow) {
                    s.armed_rto = None;
                    if let Some(d) = s.rto_deadline {
                        if d <= ctx.now && !s.finished {
                            s.on_rto(ctx);
                        }
                    }
                    Self::arm_rto_if_needed(ctx, s, flow);
                }
            }
            TOKEN_PACE => {
                let flow = FlowId(arg as u32);
                let finished = if let Some(u) = self.udp.get_mut(&flow) {
                    match u.send_one(ctx) {
                        Some(next) => {
                            ctx.arm_timer_in(next, TOKEN_PACE | flow.0 as u64);
                            false
                        }
                        None => u.finished,
                    }
                } else {
                    false
                };
                if finished {
                    self.start_chained(ctx, flow);
                }
            }
            other => panic!("unknown transport timer token {other:#x}"),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::CcAlgo;
    use aq_netsim::ids::EntityId;
    use aq_netsim::stats::StatsHub;
    use aq_netsim::time::{Rate, Time};

    #[test]
    fn on_start_arms_one_timer_per_flow() {
        let mut h = TransportHost::new(NodeId(0));
        h.add_flow(FlowSpec::long_tcp(
            FlowId(1),
            EntityId(1),
            NodeId(0),
            NodeId(1),
            CcAlgo::Cubic,
        ));
        let mut spec2 =
            FlowSpec::long_tcp(FlowId(2), EntityId(1), NodeId(0), NodeId(1), CcAlgo::Cubic);
        spec2.start = Time::from_millis(5);
        h.add_flow(spec2);
        let mut stats = StatsHub::new();
        let mut ctx = HostCtx::new(Time::ZERO, NodeId(0), &mut stats);
        h.on_start(&mut ctx);
        let timers = ctx.take_timers();
        assert_eq!(timers.len(), 2);
        assert_eq!(timers[0].0, Time::ZERO);
        assert_eq!(timers[1].0, Time::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "sources from")]
    fn wrong_source_is_rejected() {
        let mut h = TransportHost::new(NodeId(0));
        h.add_flow(FlowSpec::long_tcp(
            FlowId(1),
            EntityId(1),
            NodeId(5),
            NodeId(1),
            CcAlgo::Cubic,
        ));
    }

    #[test]
    fn start_timer_launches_tcp_flow_and_registers_it() {
        let mut h = TransportHost::new(NodeId(0));
        h.add_flow(FlowSpec::sized_tcp(
            FlowId(1),
            EntityId(2),
            NodeId(0),
            NodeId(1),
            CcAlgo::NewReno,
            5000,
            Time::ZERO,
        ));
        let mut stats = StatsHub::new();
        let mut ctx = HostCtx::new(Time::ZERO, NodeId(0), &mut stats);
        h.on_timer(&mut ctx, TOKEN_START);
        let sends = ctx.take_sends();
        assert_eq!(sends.len(), 5); // min(IW10, 5 segments)
        assert!(stats.flow(FlowId(1)).is_some());
        assert!(h.sender(FlowId(1)).is_some());
    }

    #[test]
    fn udp_flow_paces_itself() {
        let mut h = TransportHost::new(NodeId(0));
        h.add_flow(FlowSpec::long_udp(
            FlowId(3),
            EntityId(1),
            NodeId(0),
            NodeId(1),
            Rate::from_gbps(10),
        ));
        let mut stats = StatsHub::new();
        let mut ctx = HostCtx::new(Time::ZERO, NodeId(0), &mut stats);
        h.on_timer(&mut ctx, TOKEN_START);
        assert_eq!(ctx.take_sends().len(), 1);
        let timers = ctx.take_timers();
        assert_eq!(timers.len(), 1);
        assert_eq!(timers[0].1, TOKEN_PACE | 3);
        // Fire the pace timer: another datagram + re-arm.
        let mut ctx = HostCtx::new(timers[0].0, NodeId(0), &mut stats);
        h.on_timer(&mut ctx, TOKEN_PACE | 3);
        assert_eq!(ctx.take_sends().len(), 1);
        assert_eq!(ctx.take_timers().len(), 1);
    }

    #[test]
    fn data_packets_create_receiver_and_produce_acks() {
        let mut h = TransportHost::new(NodeId(1));
        let mut stats = StatsHub::new();
        let mut ctx = HostCtx::new(Time::from_micros(5), NodeId(1), &mut stats);
        let data = Packet::data(
            FlowId(9),
            EntityId(1),
            NodeId(0),
            NodeId(1),
            0,
            1000,
            false,
            Time::ZERO,
        );
        h.on_packet(&mut ctx, data);
        let acks = ctx.take_sends();
        assert_eq!(acks.len(), 1);
        assert!(acks[0].is_ack());
        assert!(h.receiver(FlowId(9)).is_some());
    }

    #[test]
    fn stale_rto_timer_is_harmless() {
        let mut h = TransportHost::new(NodeId(0));
        h.add_flow(FlowSpec::long_tcp(
            FlowId(1),
            EntityId(1),
            NodeId(0),
            NodeId(1),
            CcAlgo::NewReno,
        ));
        let mut stats = StatsHub::new();
        let mut ctx = HostCtx::new(Time::ZERO, NodeId(0), &mut stats);
        h.on_timer(&mut ctx, TOKEN_START);
        ctx.take_sends();
        // Fire an RTO timer long before the deadline: nothing happens.
        let mut ctx = HostCtx::new(Time::from_micros(1), NodeId(0), &mut stats);
        h.on_timer(&mut ctx, TOKEN_RTO | 1);
        assert!(ctx.take_sends().is_empty());
        assert_eq!(h.sender(FlowId(1)).expect("sender").timeouts, 0);
    }
}
