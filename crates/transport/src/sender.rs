//! The reliable sender: window-based transmission with an exact SACK
//! scoreboard, FACK-style loss marking, RTO fallback, RTT estimation, and
//! the bridge between network feedback and the pluggable congestion
//! control.
//!
//! Because the receiver acknowledges every data packet and each ACK names
//! the specific segment it covers (`this_seq`), the sender maintains a
//! *perfect* per-segment scoreboard — functionally Linux-grade SACK without
//! encoding block lists. A segment is marked lost once the highest SACKed
//! sequence is `DUPACK_THRESHOLD` beyond it (the FACK rule), and every
//! marked hole in a window is retransmitted as the window allows, so a
//! burst of losses (e.g. slow-start overshoot into an AQ policer) repairs
//! in roughly one round trip instead of one hole per RTT.

use crate::cc::{AckSignals, CongestionControl};
use crate::flow::{DelaySignal, FlowKind, FlowSpec};
use aq_netsim::node::HostCtx;
use aq_netsim::packet::{Ecn, Packet};
use aq_netsim::time::{Duration, Time};
use std::collections::VecDeque;

/// Reordering tolerance: a hole is declared lost once this many segments
/// beyond it have been SACKed.
const DUPACK_THRESHOLD: u64 = 3;
/// Lower bound on the retransmission timeout (data center scale; Linux
/// deployments in DCs commonly tune this to ~1 ms).
const MIN_RTO: Duration = Duration::from_millis(1);
/// Upper bound on the retransmission timeout.
const MAX_RTO: Duration = Duration::from_millis(200);
/// Cap on the exponential RTO backoff: consecutive timeouts double the
/// timeout up to `2^MAX_RTO_BACKOFF` times the base value (and the result
/// is always clamped to [`MAX_RTO`]). Further timeouts hold the cap
/// instead of widening the shift — a sender sitting through a long
/// blackout must keep probing, not go silent for an unbounded interval.
const MAX_RTO_BACKOFF: u32 = 6;

/// Scoreboard state of one sent, not-yet-cumulatively-acked segment.
/// The three states are mutually exclusive; SACK moves `InFlight` (or
/// `Lost`) to `Sacked`, loss marking moves `InFlight` to `Lost`, and a
/// retransmission moves `Lost` back to `InFlight`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SegState {
    /// Sent, not cum-acked, not SACKed, not marked lost — the pipe.
    InFlight,
    /// SACKed above `cum_ack`.
    Sacked,
    /// Marked lost, awaiting retransmission.
    Lost,
}

/// Per-segment scoreboard cell (see [`SenderFlow::window`]).
#[derive(Clone, Copy, Debug)]
struct SegCell {
    /// Last transmission time (RACK loss marking).
    sent_at: Time,
    state: SegState,
    /// Retransmitted at least once and not yet cumulatively
    /// acknowledged. An ACK covering such a segment is ambiguous — it
    /// may answer any copy — so it yields no RTT sample (Karn's rule).
    retransmitted: bool,
}

/// Sender-side state of one reliable flow.
pub struct SenderFlow {
    /// The flow description.
    pub spec: FlowSpec,
    cc: Box<dyn CongestionControl>,
    total_segments: Option<u64>,
    /// Next fresh sequence to send.
    snd_nxt: u64,
    /// All sequences below this are acknowledged.
    cum_ack: u64,
    /// The per-segment scoreboard for the active window
    /// `[cum_ack, snd_nxt)`, indexed by `seq - cum_ack`. Every ACK
    /// touches the scoreboard several times; a window-relative array
    /// makes each touch an O(1) index instead of an ordered-map descent,
    /// and cumulative progress is a run of `pop_front`s.
    window: VecDeque<SegCell>,
    /// Number of [`SegState::InFlight`] cells in `window`.
    in_flight_count: usize,
    /// Number of [`SegState::Lost`] cells in `window`.
    lost_count: usize,
    /// Highest SACKed sequence (FACK edge), if any.
    highest_sacked: Option<u64>,
    /// Fast-recovery end point: one cc reduction per window of loss.
    recovery_point: Option<u64>,
    /// Entering recovery grants one retransmission regardless of window
    /// space (classic fast retransmit).
    force_retransmit: bool,
    min_rtt: Option<Duration>,
    srtt_ns: f64,
    rttvar_ns: f64,
    rto_backoff: u32,
    /// When the retransmission timer should fire (None = nothing in
    /// flight). The host arms real simulator timers against this.
    pub rto_deadline: Option<Time>,
    /// The deadline the host has actually armed (stale-timer suppression).
    pub armed_rto: Option<Time>,
    /// All segments acknowledged (sender view).
    pub finished: bool,
    /// Cumulative retransmissions (diagnostics).
    pub retransmissions: u64,
    /// Cumulative segments sent, including retransmissions.
    pub segments_sent: u64,
    /// Loss-recovery episodes entered (diagnostics).
    pub recoveries: u64,
    /// RTO events (diagnostics).
    pub timeouts: u64,
}

impl SenderFlow {
    /// Build the sender for a TCP flow spec.
    ///
    /// # Panics
    /// Panics if the spec is UDP.
    pub fn new(spec: FlowSpec) -> SenderFlow {
        let FlowKind::Tcp(algo) = spec.kind else {
            panic!("SenderFlow requires a TCP spec");
        };
        let total_segments = spec.total_segments();
        SenderFlow {
            cc: algo.build(),
            total_segments,
            snd_nxt: 0,
            cum_ack: 0,
            window: VecDeque::new(),
            in_flight_count: 0,
            lost_count: 0,
            highest_sacked: None,
            recovery_point: None,
            force_retransmit: false,
            min_rtt: None,
            srtt_ns: 0.0,
            rttvar_ns: 0.0,
            rto_backoff: 0,
            rto_deadline: None,
            armed_rto: None,
            finished: false,
            retransmissions: 0,
            segments_sent: 0,
            recoveries: 0,
            timeouts: 0,
            spec,
        }
    }

    /// Current congestion window (segments).
    pub fn cwnd(&self) -> f64 {
        self.cc.cwnd()
    }

    /// Congestion-control algorithm name.
    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    /// Smoothed RTT estimate, if any sample has been taken.
    pub fn srtt(&self) -> Option<Duration> {
        (self.srtt_ns > 0.0).then(|| Duration::from_nanos(self.srtt_ns as u64))
    }

    /// Segments currently considered in the network.
    pub fn outstanding(&self) -> u64 {
        self.in_flight_count as u64
    }

    /// The scoreboard cell of `seq`, if it is inside the active window.
    fn cell(&self, seq: u64) -> Option<&SegCell> {
        let i = seq.checked_sub(self.cum_ack)?;
        self.window.get(i as usize)
    }

    fn cell_mut(&mut self, seq: u64) -> Option<&mut SegCell> {
        let i = seq.checked_sub(self.cum_ack)?;
        self.window.get_mut(i as usize)
    }

    /// Lowest sequence currently marked lost, if any. O(window) scan,
    /// but guarded by the counter: in the common loss-free case it costs
    /// one comparison.
    fn first_lost(&self) -> Option<u64> {
        if self.lost_count == 0 {
            return None;
        }
        self.window
            .iter()
            .position(|c| c.state == SegState::Lost)
            .map(|i| self.cum_ack + i as u64)
    }

    /// Record a (re)transmission of `seq` in the scoreboard: the segment
    /// (re)enters the pipe stamped `now`. A fresh send must extend the
    /// window by exactly one cell.
    fn track_send(&mut self, seq: u64, now: Time, retransmit: bool) {
        if retransmit {
            let c = self.cell_mut(seq).expect("retransmit inside the window");
            debug_assert_eq!(c.state, SegState::Lost);
            c.state = SegState::InFlight;
            c.sent_at = now;
            c.retransmitted = true;
            self.lost_count -= 1;
        } else {
            debug_assert_eq!(seq, self.cum_ack + self.window.len() as u64);
            self.window.push_back(SegCell {
                sent_at: now,
                state: SegState::InFlight,
                retransmitted: false,
            });
        }
        self.in_flight_count += 1;
    }

    /// Whether the sender is in fast recovery.
    pub fn in_recovery(&self) -> bool {
        self.recovery_point.is_some()
    }

    /// Kick off transmission (call at the flow's start time).
    pub fn start(&mut self, ctx: &mut HostCtx<'_>) {
        self.pump(ctx);
    }

    fn rto(&self) -> Duration {
        let base = if self.srtt_ns > 0.0 {
            Duration::from_nanos((self.srtt_ns + 4.0 * self.rttvar_ns) as u64)
        } else {
            MIN_RTO
        };
        let backed = base.saturating_mul(1u64 << self.rto_backoff.min(MAX_RTO_BACKOFF));
        backed.clamp(MIN_RTO, MAX_RTO)
    }

    fn build_segment(&self, seq: u64, now: Time) -> Packet {
        let fin = self.total_segments.map(|t| seq + 1 == t).unwrap_or(false);
        let mut p = Packet::data(
            self.spec.flow,
            self.spec.entity,
            self.spec.src,
            self.spec.dst,
            seq,
            self.spec.segment_payload(seq),
            fin,
            now,
        );
        p.aq_ingress = self.spec.aq_ingress;
        p.aq_egress = self.spec.aq_egress;
        if let FlowKind::Tcp(algo) = self.spec.kind {
            if algo.ecn_capable() {
                p.ecn = Ecn::Capable;
            }
        }
        p
    }

    /// Transmit as the window allows: marked-lost holes first, then new
    /// data.
    fn pump(&mut self, ctx: &mut HostCtx<'_>) {
        if self.finished {
            return;
        }
        let wnd = (self.cc.cwnd().floor() as usize).max(1);
        if self.force_retransmit {
            self.force_retransmit = false;
            if let Some(seq) = self.first_lost() {
                let pkt = self.build_segment(seq, ctx.now);
                ctx.send(pkt);
                self.track_send(seq, ctx.now, true);
                self.segments_sent += 1;
                self.retransmissions += 1;
            }
        }
        while self.in_flight_count < wnd {
            if let Some(seq) = self.first_lost() {
                let pkt = self.build_segment(seq, ctx.now);
                ctx.send(pkt);
                self.track_send(seq, ctx.now, true);
                self.segments_sent += 1;
                self.retransmissions += 1;
                continue;
            }
            if let Some(total) = self.total_segments {
                if self.snd_nxt >= total {
                    break;
                }
            }
            let pkt = self.build_segment(self.snd_nxt, ctx.now);
            ctx.send(pkt);
            self.track_send(self.snd_nxt, ctx.now, false);
            self.snd_nxt += 1;
            self.segments_sent += 1;
        }
        // (Re)start the retransmission timer while anything is unresolved.
        let active = self.in_flight_count > 0 || self.lost_count > 0;
        self.rto_deadline = active.then(|| ctx.now + self.rto());
    }

    /// Loss marking, combining two standard rules so retransmissions are
    /// not instantly re-marked:
    ///
    /// * FACK: only segments more than the reordering threshold below the
    ///   highest SACKed sequence are candidates;
    /// * RACK: a candidate is lost only if it was sent at least a
    ///   reordering window *before* the delivered packet that exposes it
    ///   (`delivered_sent_at` = the echoed send timestamp) — a fresh
    ///   retransmission, sent after every copy that can be delivered
    ///   ahead of it, therefore gets a full round trip before it can be
    ///   marked again.
    fn mark_losses(&mut self, now: Time, delivered_sent_at: Time) {
        let Some(hi) = self.highest_sacked else {
            return;
        };
        let Some(edge) = hi.checked_sub(DUPACK_THRESHOLD) else {
            return;
        };
        // RACK's initial reordering window is zero (RFC 8985) — the
        // FACK threshold above already absorbs reordering — so the rule
        // reduces to: lost iff sent no later than the delivered copy.
        let base = self.cum_ack;
        let mut any = false;
        for (i, c) in self.window.iter_mut().enumerate() {
            if base + i as u64 > edge {
                break;
            }
            if c.state == SegState::InFlight && c.sent_at <= delivered_sent_at {
                c.state = SegState::Lost;
                self.in_flight_count -= 1;
                self.lost_count += 1;
                any = true;
            }
        }
        if !any {
            return;
        }
        // One congestion response per window of loss, plus one immediate
        // retransmission to keep the ACK clock alive.
        if self.recovery_point.is_none() {
            self.recovery_point = Some(self.snd_nxt);
            self.recoveries += 1;
            self.force_retransmit = true;
            self.cc.on_loss(now);
        }
    }

    /// Drop scoreboard cells below `cum` (cumulative progress). Must be
    /// called *before* `cum_ack` is advanced to `cum` — the window is
    /// indexed relative to the old base while popping.
    fn purge_below(&mut self, cum: u64) {
        let mut base = self.cum_ack;
        while base < cum {
            let Some(c) = self.window.pop_front() else {
                break;
            };
            match c.state {
                SegState::InFlight => self.in_flight_count -= 1,
                SegState::Lost => self.lost_count -= 1,
                SegState::Sacked => {}
            }
            base += 1;
        }
    }

    /// Handle one ACK.
    #[allow(clippy::too_many_arguments)]
    pub fn on_ack(
        &mut self,
        ctx: &mut HostCtx<'_>,
        cum_ack: u64,
        _sack_hi: u64,
        this_seq: u64,
        ecn_echo: bool,
        vdelay_echo_ns: u64,
        ts_echo: Time,
        fin_acked: bool,
    ) {
        if self.finished {
            return;
        }
        // The scoreboard is window-relative (cells indexed by
        // `seq - cum_ack` over `[cum_ack, snd_nxt)`), so a cumulative ACK
        // past `snd_nxt` is unrepresentable. A well-formed peer never
        // sends one — it would acknowledge data never transmitted — so a
        // malformed ACK is treated as covering exactly everything sent.
        let cum_ack = cum_ack.min(self.snd_nxt);
        let now = ctx.now;
        // RTT sample from the echoed per-packet timestamp. Karn's rule: a
        // segment that was ever retransmitted yields no sample — the echo
        // cannot be trusted to identify which copy it answers, and a late
        // original arriving after the retransmission would inflate srtt
        // right when the timer most needs to stay honest.
        let rtt = now - ts_echo;
        let karn_ambiguous = self.cell(this_seq).is_some_and(|c| c.retransmitted);
        if rtt > Duration::ZERO && !karn_ambiguous {
            self.min_rtt = Some(self.min_rtt.map_or(rtt, |m| m.min(rtt)));
            if self.srtt_ns <= 0.0 {
                self.srtt_ns = rtt.as_nanos() as f64;
                self.rttvar_ns = rtt.as_nanos() as f64 / 2.0;
            } else {
                let err = (rtt.as_nanos() as f64 - self.srtt_ns).abs();
                self.rttvar_ns = 0.75 * self.rttvar_ns + 0.25 * err;
                self.srtt_ns = 0.875 * self.srtt_ns + 0.125 * rtt.as_nanos() as f64;
            }
        }
        let min_rtt = self.min_rtt.unwrap_or(rtt);
        let queuing_delay = match self.spec.delay_signal {
            DelaySignal::MeasuredRtt => rtt - min_rtt,
            DelaySignal::VirtualDelay => Duration::from_nanos(vdelay_echo_ns),
        };

        // Scoreboard: the specifically-covered segment leaves the pipe.
        if this_seq >= self.cum_ack {
            let prev = self.cell_mut(this_seq).map(|c| {
                let was = c.state;
                c.state = SegState::Sacked;
                was
            });
            match prev {
                Some(SegState::InFlight) => self.in_flight_count -= 1,
                Some(SegState::Lost) => self.lost_count -= 1,
                Some(SegState::Sacked) | None => {}
            }
            self.highest_sacked = Some(self.highest_sacked.map_or(this_seq, |h| h.max(this_seq)));
        }

        if cum_ack > self.cum_ack {
            let newly = cum_ack - self.cum_ack;
            self.purge_below(cum_ack);
            self.cum_ack = cum_ack;
            self.rto_backoff = 0;
            if let Some(rp) = self.recovery_point {
                if cum_ack >= rp {
                    self.recovery_point = None;
                }
            }
            self.cc.on_ack(&AckSignals {
                now,
                newly_acked: newly,
                rtt,
                min_rtt,
                queuing_delay,
                ecn_echo,
                snd_nxt: self.snd_nxt,
                cum_ack,
            });
            if let Some(total) = self.total_segments {
                if cum_ack >= total || fin_acked {
                    self.finished = true;
                    self.rto_deadline = None;
                    return;
                }
            }
        }
        self.mark_losses(now, ts_echo);
        self.pump(ctx);
    }

    /// The retransmission timer fired (already validated by the host
    /// against [`SenderFlow::rto_deadline`]).
    pub fn on_rto(&mut self, ctx: &mut HostCtx<'_>) {
        if self.finished || (self.in_flight_count == 0 && self.lost_count == 0) {
            self.rto_deadline = None;
            return;
        }
        self.timeouts += 1;
        self.rto_backoff = (self.rto_backoff + 1).min(MAX_RTO_BACKOFF);
        // Everything unacknowledged is presumed lost.
        for c in self.window.iter_mut() {
            if c.state == SegState::InFlight {
                c.state = SegState::Lost;
                self.in_flight_count -= 1;
                self.lost_count += 1;
            }
        }
        self.recovery_point = Some(self.snd_nxt);
        self.cc.on_timeout(ctx.now);
        self.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::CcAlgo;
    use aq_netsim::ids::{EntityId, FlowId, NodeId};
    use aq_netsim::stats::StatsHub;
    use aq_netsim::time::Time;

    fn spec(bytes: Option<u64>) -> FlowSpec {
        let mut s = FlowSpec::long_tcp(
            FlowId(1),
            EntityId(1),
            NodeId(0),
            NodeId(9),
            CcAlgo::NewReno,
        );
        s.bytes = bytes;
        s
    }

    /// Run `f` with a scratch context, returning the packets it sent.
    fn with_ctx(now: Time, f: impl FnOnce(&mut HostCtx<'_>)) -> Vec<Packet> {
        let mut stats = StatsHub::new();
        let mut ctx = HostCtx::new(now, NodeId(0), &mut stats);
        f(&mut ctx);
        ctx.take_sends()
    }

    fn data_seqs(pkts: &[Packet]) -> Vec<u64> {
        pkts.iter()
            .filter_map(|p| match p.transport {
                aq_netsim::packet::TransportHeader::Data { seq, .. } => Some(seq),
                _ => None,
            })
            .collect()
    }

    /// Shorthand: deliver an ACK covering `this_seq` with cumulative `cum`.
    fn ack(s: &mut SenderFlow, now_us: u64, cum: u64, this_seq: u64) -> Vec<Packet> {
        with_ctx(Time::from_micros(now_us), |ctx| {
            s.on_ack(
                ctx,
                cum,
                this_seq + 1,
                this_seq,
                false,
                0,
                Time::ZERO,
                false,
            )
        })
    }

    #[test]
    fn start_sends_initial_window() {
        let mut s = SenderFlow::new(spec(None));
        let sent = with_ctx(Time::ZERO, |ctx| s.start(ctx));
        assert_eq!(sent.len(), 10); // IW10
        assert_eq!(s.segments_sent, 10);
        assert_eq!(s.outstanding(), 10);
        assert!(s.rto_deadline.is_some());
    }

    #[test]
    fn finite_flow_stops_at_total_and_sets_fin() {
        let mut s = SenderFlow::new(spec(Some(2500))); // 3 segments
        let sent = with_ctx(Time::ZERO, |ctx| s.start(ctx));
        assert_eq!(sent.len(), 3);
        match sent[2].transport {
            aq_netsim::packet::TransportHeader::Data { seq, fin } => {
                assert_eq!(seq, 2);
                assert!(fin);
            }
            _ => panic!("expected data"),
        }
        assert_eq!(sent[2].payload(), 500);
    }

    #[test]
    fn cumulative_ack_advances_and_finishes() {
        let mut s = SenderFlow::new(spec(Some(2500)));
        with_ctx(Time::ZERO, |ctx| s.start(ctx));
        let _ = with_ctx(Time::from_micros(100), |ctx| {
            s.on_ack(ctx, 3, 3, 2, false, 0, Time::ZERO, true);
        });
        assert!(s.finished);
        assert_eq!(s.rto_deadline, None);
    }

    #[test]
    fn fack_marks_and_retransmits_the_hole() {
        let mut s = SenderFlow::new(spec(None));
        with_ctx(Time::ZERO, |ctx| s.start(ctx));
        let w_before = s.cwnd();
        // Segment 0 lost; SACKs of 1 and 2 stay under the threshold — the
        // pipe refills with new data but nothing is retransmitted.
        assert!(!data_seqs(&ack(&mut s, 100, 0, 1)).contains(&0));
        assert!(!data_seqs(&ack(&mut s, 101, 0, 2)).contains(&0));
        assert_eq!(s.recoveries, 0);
        // SACK of 3 pushes the FACK edge to 3: segment 0 is lost.
        let sent = ack(&mut s, 102, 0, 3);
        assert!(
            data_seqs(&sent).contains(&0),
            "hole retransmitted: {:?}",
            data_seqs(&sent)
        );
        assert_eq!(s.recoveries, 1);
        assert!(s.cwnd() < w_before, "loss shrinks the window");
    }

    #[test]
    fn burst_loss_repairs_all_holes_promptly() {
        // Segments 0..10 outstanding; 0..=5 all lost, 6..=9 arrive. All the
        // marked holes must go out as the (halved) window allows — not one
        // per RTT.
        let mut s = SenderFlow::new(spec(None));
        with_ctx(Time::ZERO, |ctx| s.start(ctx));
        let mut retx = Vec::new();
        for (i, seq) in (6..10u64).enumerate() {
            retx.extend(data_seqs(&ack(&mut s, 100 + i as u64, 0, seq)));
        }
        retx.sort_unstable();
        retx.dedup();
        let holes: Vec<u64> = retx.iter().copied().filter(|s| *s <= 5).collect();
        assert!(
            holes.len() >= 4,
            "bulk retransmission expected, got {holes:?}"
        );
        assert_eq!(s.recoveries, 1, "one cc reduction for the whole burst");
    }

    #[test]
    fn rto_collapses_window_and_retransmits_head() {
        let mut s = SenderFlow::new(spec(None));
        with_ctx(Time::ZERO, |ctx| s.start(ctx));
        let sent = with_ctx(Time::from_millis(3), |ctx| s.on_rto(ctx));
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(data_seqs(&sent), vec![0], "head of line retransmits first");
        // Backoff doubled the 1 ms floor: deadline = 3 ms + 2 ms.
        assert_eq!(s.rto_deadline.expect("armed"), Time::from_millis(5));
    }

    #[test]
    fn rtt_estimation_tracks_samples() {
        let mut s = SenderFlow::new(spec(None));
        with_ctx(Time::ZERO, |ctx| s.start(ctx));
        with_ctx(Time::from_micros(50), |ctx| {
            s.on_ack(ctx, 1, 1, 0, false, 0, Time::ZERO, false);
        });
        assert_eq!(s.srtt().expect("sample"), Duration::from_micros(50));
        assert_eq!(s.min_rtt, Some(Duration::from_micros(50)));
    }

    #[test]
    fn sacked_segments_leave_the_pipe_allowing_new_data() {
        let mut s = SenderFlow::new(spec(None));
        with_ctx(Time::ZERO, |ctx| s.start(ctx));
        assert_eq!(s.outstanding(), 10);
        // SACK of 2 (cum still 0, below the loss threshold): pipe drops to
        // 9, one new segment goes out to refill the window.
        let sent = ack(&mut s, 60, 0, 2);
        assert_eq!(data_seqs(&sent), vec![10]);
        assert_eq!(s.outstanding(), 10);
    }

    #[test]
    fn sack_far_ahead_marks_the_skipped_range_lost() {
        let mut s = SenderFlow::new(spec(None));
        with_ctx(Time::ZERO, |ctx| s.start(ctx));
        // SACK of 5 with cum 0 implies 0..=2 are past the FACK edge.
        ack(&mut s, 60, 0, 5);
        assert_eq!(s.recoveries, 1);
        assert!(s.in_recovery());
    }

    #[test]
    fn rto_backoff_is_capped_at_max_backoff() {
        let mut s = SenderFlow::new(spec(None));
        with_ctx(Time::ZERO, |ctx| s.start(ctx));
        // A long blackout: far more timeouts than the cap.
        for i in 0..20u64 {
            with_ctx(Time::from_millis(10 * (i + 1)), |ctx| s.on_rto(ctx));
        }
        assert_eq!(s.timeouts, 20);
        assert_eq!(s.rto_backoff, MAX_RTO_BACKOFF, "backoff holds the cap");
        // No RTT sample yet, so the base is the 1 ms floor: capped backoff
        // gives 2^6 = 64 ms, still under MAX_RTO.
        assert_eq!(s.rto(), Duration::from_millis(64));
    }

    #[test]
    fn multi_rto_blackout_backs_off_exponentially_then_recovers() {
        let mut s = SenderFlow::new(spec(None));
        with_ctx(Time::ZERO, |ctx| s.start(ctx));
        // One clean sample: srtt = 500 us, rttvar = 250 us, base = 1.5 ms.
        with_ctx(Time::from_micros(500), |ctx| {
            s.on_ack(ctx, 1, 1, 0, false, 0, Time::ZERO, false);
        });
        // Blackout: three consecutive timeouts, each doubling the timer.
        let mut intervals = Vec::new();
        for i in 0..3u64 {
            let now = Time::from_millis(5 * (i + 1));
            with_ctx(now, |ctx| s.on_rto(ctx));
            intervals.push(s.rto_deadline.expect("armed") - now);
        }
        assert_eq!(intervals[0], Duration::from_millis(3)); // 1.5 ms * 2
        assert_eq!(intervals[1], Duration::from_millis(6)); // 1.5 ms * 4
        assert_eq!(intervals[2], Duration::from_millis(12)); // 1.5 ms * 8
        assert_eq!(s.cwnd(), 1.0, "timeout collapses the window");
        // The path heals: a cumulative ACK for the retransmitted head
        // resets the backoff and transmission resumes.
        let sent = with_ctx(Time::from_millis(40), |ctx| {
            s.on_ack(ctx, 2, 2, 1, false, 0, Time::ZERO, false);
        });
        assert_eq!(s.rto_backoff, 0, "cumulative progress resets backoff");
        assert!(!data_seqs(&sent).is_empty(), "recovery resumes sending");
    }

    #[test]
    fn karn_suppresses_rtt_samples_from_retransmissions() {
        let mut s = SenderFlow::new(spec(None));
        with_ctx(Time::ZERO, |ctx| s.start(ctx)); // sends 0..10
                                                  // Clean sample: 500 us.
        with_ctx(Time::from_micros(500), |ctx| {
            s.on_ack(ctx, 1, 1, 0, false, 0, Time::ZERO, false);
        });
        let srtt_clean = s.srtt().expect("sample");
        // Blackout: two RTOs; the head of line is retransmitted each time.
        with_ctx(Time::from_millis(2), |ctx| s.on_rto(ctx));
        with_ctx(Time::from_millis(10), |ctx| s.on_rto(ctx));
        // The ACK for the retransmitted head carries an ambiguous echo (it
        // could answer any copy) with a wildly inflated apparent RTT:
        // Karn's rule discards the sample.
        with_ctx(Time::from_millis(40), |ctx| {
            s.on_ack(ctx, 2, 2, 1, false, 0, Time::ZERO, false);
        });
        assert_eq!(
            s.srtt().expect("kept"),
            srtt_clean,
            "ambiguous sample dropped"
        );
        // Drain the recovery queue — every segment here is a
        // retransmission, so srtt still must not move.
        let mut now_us = 41_000u64;
        for seq in 2..10u64 {
            with_ctx(Time::from_micros(now_us), |ctx| {
                s.on_ack(ctx, seq + 1, seq + 1, seq, false, 0, Time::ZERO, false);
            });
            now_us += 100;
        }
        assert_eq!(s.srtt().expect("kept"), srtt_clean);
        // Fresh data (never retransmitted) resumes sampling.
        let fresh = (s.cum_ack..s.snd_nxt)
            .find(|&q| {
                s.cell(q)
                    .is_some_and(|c| c.state == SegState::InFlight && !c.retransmitted)
            })
            .expect("fresh segment in flight");
        with_ctx(Time::from_micros(now_us), |ctx| {
            s.on_ack(
                ctx,
                fresh + 1,
                fresh + 1,
                fresh,
                false,
                0,
                Time::from_micros(now_us - 100),
                false,
            );
        });
        assert_ne!(s.srtt().expect("resumed"), srtt_clean, "sampling resumes");
    }

    #[test]
    fn duplicate_sacks_do_not_inflate() {
        let mut s = SenderFlow::new(spec(None));
        with_ctx(Time::ZERO, |ctx| s.start(ctx));
        ack(&mut s, 60, 0, 2);
        let before = s.segments_sent;
        // The same SACK again: nothing new leaves.
        let sent = ack(&mut s, 61, 0, 2);
        assert!(data_seqs(&sent).is_empty());
        assert_eq!(s.segments_sent, before);
    }
}
