//! # aq-transport — host transport layer
//!
//! The end-host side of the reproduction: a reliable window-based
//! transport with per-packet ACKs (carrying ECN echo, timestamp echo, and
//! the AQ virtual-delay echo), NewReno-style loss recovery, and five
//! pluggable congestion-control algorithms — NewReno, CUBIC, TCP-Illinois,
//! DCTCP, and Swift — plus unreactive paced UDP sources.
//!
//! The entry point is [`TransportHost`], the [`aq_netsim::HostApp`]
//! installed on every simulated host; flows are described by [`FlowSpec`].

pub mod cc;
pub mod flow;
pub mod host;
pub mod receiver;
pub mod sender;
pub mod udp;

pub use cc::{AckSignals, CcAlgo, CongestionControl, MAX_CWND, MIN_CWND};
pub use flow::{DelaySignal, FlowKind, FlowSpec};
pub use host::TransportHost;
pub use receiver::ReceiverFlow;
pub use sender::SenderFlow;
pub use udp::UdpSender;
