//! The receiver: reassembly, cumulative + SACK-right-edge acknowledgment,
//! ECN echo, virtual-delay echo, and flow-completion reporting.

use aq_netsim::ids::FlowId;
use aq_netsim::node::HostCtx;
use aq_netsim::packet::{Packet, TransportHeader};
use std::collections::BTreeSet;

/// Receiver-side state of one reliable flow (created on the first data
/// packet).
#[derive(Debug)]
pub struct ReceiverFlow {
    /// The flow being received.
    pub flow: FlowId,
    /// Next in-order sequence expected.
    cum: u64,
    /// Sequences received above `cum`.
    out_of_order: BTreeSet<u64>,
    /// Sequence of the FIN segment, once seen.
    fin_seq: Option<u64>,
    /// All data up to and including FIN has arrived.
    pub completed: bool,
    /// Payload bytes received (including duplicates).
    pub bytes_received: u64,
}

impl ReceiverFlow {
    /// Fresh state for `flow`.
    pub fn new(flow: FlowId) -> ReceiverFlow {
        ReceiverFlow {
            flow,
            cum: 0,
            out_of_order: BTreeSet::new(),
            fin_seq: None,
            completed: false,
            bytes_received: 0,
        }
    }

    /// Next expected in-order sequence.
    pub fn cum_ack(&self) -> u64 {
        self.cum
    }

    /// SACK right edge: one past the highest sequence held.
    pub fn sack_hi(&self) -> u64 {
        self.out_of_order
            .iter()
            .next_back()
            .map(|s| s + 1)
            .unwrap_or(self.cum)
            .max(self.cum)
    }

    /// Process a data segment: reassemble and send an ACK back. Reports
    /// flow completion to the stats hub the first time all bytes are held.
    pub fn on_data(&mut self, ctx: &mut HostCtx<'_>, pkt: &Packet) {
        let TransportHeader::Data { seq, fin } = pkt.transport else {
            return;
        };
        self.bytes_received += pkt.payload() as u64;
        if fin {
            self.fin_seq = Some(seq);
        }
        if seq == self.cum {
            self.cum += 1;
            while self.out_of_order.remove(&self.cum) {
                self.cum += 1;
            }
        } else if seq > self.cum {
            self.out_of_order.insert(seq);
        } // seq < cum: duplicate of already-delivered data; ACK anyway.
        if !self.completed {
            if let Some(f) = self.fin_seq {
                if self.cum > f {
                    self.completed = true;
                    ctx.stats.flow_completed(self.flow, ctx.now);
                }
            }
        }
        let ack = Packet::ack_for(pkt, self.cum, self.sack_hi(), self.completed, ctx.now);
        ctx.send(ack);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_netsim::ids::{EntityId, NodeId};
    use aq_netsim::stats::StatsHub;
    use aq_netsim::time::Time;

    fn data(seq: u64, fin: bool) -> Packet {
        Packet::data(
            FlowId(7),
            EntityId(1),
            NodeId(0),
            NodeId(1),
            seq,
            1000,
            fin,
            Time::ZERO,
        )
    }

    fn deliver(r: &mut ReceiverFlow, stats: &mut StatsHub, seq: u64, fin: bool) -> Packet {
        let mut ctx = HostCtx::new(Time::from_micros(seq * 10 + 1), NodeId(1), stats);
        r.on_data(&mut ctx, &data(seq, fin));
        let mut sends = ctx.take_sends();
        assert_eq!(sends.len(), 1, "every data packet is acked");
        sends.pop().expect("ack")
    }

    fn ack_fields(p: &Packet) -> (u64, u64, bool) {
        match p.transport {
            TransportHeader::Ack {
                cum_ack,
                sack_hi,
                fin_acked,
                ..
            } => (cum_ack, sack_hi, fin_acked),
            _ => panic!("not an ack"),
        }
    }

    #[test]
    fn in_order_delivery_advances_cum() {
        let mut r = ReceiverFlow::new(FlowId(7));
        let mut stats = StatsHub::new();
        for seq in 0..3 {
            let ack = deliver(&mut r, &mut stats, seq, false);
            assert_eq!(ack_fields(&ack), (seq + 1, seq + 1, false));
        }
    }

    #[test]
    fn hole_produces_dup_acks_with_growing_sack() {
        let mut r = ReceiverFlow::new(FlowId(7));
        let mut stats = StatsHub::new();
        deliver(&mut r, &mut stats, 0, false);
        // 1 lost; 2, 3, 4 arrive.
        let a2 = deliver(&mut r, &mut stats, 2, false);
        let a3 = deliver(&mut r, &mut stats, 3, false);
        let a4 = deliver(&mut r, &mut stats, 4, false);
        assert_eq!(ack_fields(&a2), (1, 3, false));
        assert_eq!(ack_fields(&a3), (1, 4, false));
        assert_eq!(ack_fields(&a4), (1, 5, false));
        // Retransmission of 1 fills the hole and jumps cum to 5.
        let a1 = deliver(&mut r, &mut stats, 1, false);
        assert_eq!(ack_fields(&a1), (5, 5, false));
    }

    #[test]
    fn completion_requires_all_segments_through_fin() {
        let mut r = ReceiverFlow::new(FlowId(7));
        let mut stats = StatsHub::new();
        stats.register_flow(FlowId(7), EntityId(1), 3000, Time::ZERO);
        deliver(&mut r, &mut stats, 0, false);
        // FIN arrives out of order: not complete (segment 1 missing).
        let afin = deliver(&mut r, &mut stats, 2, true);
        assert_eq!(ack_fields(&afin), (1, 3, false));
        assert!(!r.completed);
        let a1 = deliver(&mut r, &mut stats, 1, false);
        assert_eq!(ack_fields(&a1), (3, 3, true));
        assert!(r.completed);
        assert!(stats.flow(FlowId(7)).expect("registered").end.is_some());
    }

    #[test]
    fn duplicate_data_is_acked_but_not_recounted_for_cum() {
        let mut r = ReceiverFlow::new(FlowId(7));
        let mut stats = StatsHub::new();
        deliver(&mut r, &mut stats, 0, false);
        let dup = deliver(&mut r, &mut stats, 0, false);
        assert_eq!(ack_fields(&dup), (1, 1, false));
    }
}
