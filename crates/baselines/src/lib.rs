//! # aq-baselines — the systems the paper compares AQ against
//!
//! * [`htb`] — HTB-style token-bucket shaping: the *pre-determined rate
//!   limiter* (PRL) baseline, installed on host uplinks;
//! * [`elastic`] — an ElasticSwitch-style *dynamic rate limiter* (DRL)
//!   agent: hose-model guarantee partitioning plus probing rate
//!   allocation on a 15 ms loop;
//! * [`drr`] — Deficit Round Robin per-flow queueing, representing the
//!   fair-queueing family of related work;
//! * [`wfq`] — weighted DRR per-entity queueing (the WFQ family),
//!   the strongest sharing a port's physical queues can express.
//!
//! The physical queue (PQ) baseline needs no code here: it is the
//! simulator's native [`aq_netsim::FifoQueue`].

pub mod drr;
pub mod elastic;
pub mod htb;
pub mod wfq;

pub use drr::DrrQueue;
pub use elastic::{ElasticSwitch, VmConfig};
pub use htb::{ClassKey, Classify, HtbShaper, TokenBucket};
pub use wfq::WfqQueue;
