//! Weighted fair queueing via weighted DRR — the WFQ family of the
//! paper's related work (§7), generalizing [`crate::drr`] from per-flow
//! equality to per-*entity* weighted shares.
//!
//! Each entity class gets a deficit quantum proportional to its weight, so
//! backlogged entities share the port in weight proportion regardless of
//! their flow counts. This is the strongest thing a queueing discipline
//! can do with the handful of physical queues a port has — and still
//! cannot limit an entity below the line rate when the port is idle,
//! which is exactly the gap AQ fills.

use aq_netsim::ids::EntityId;
use aq_netsim::packet::Packet;
use aq_netsim::queue::{DropCause, Enqueued, QueueDiscipline};
use aq_netsim::time::Time;
use std::collections::{BTreeMap, VecDeque};

#[derive(Debug, Default)]
struct WfqClass {
    weight: u64,
    queue: VecDeque<(Packet, Time)>,
    backlog: u64,
    deficit: u64,
    /// Bytes released (diagnostics).
    pub released: u64,
}

/// The weighted-DRR discipline, classified by owning entity.
pub struct WfqQueue {
    /// Base quantum in bytes for weight 1 (scaled per class by weight).
    pub base_quantum: u64,
    /// Shared byte limit across all classes.
    pub limit_bytes: u64,
    default_weight: u64,
    classes: BTreeMap<EntityId, WfqClass>,
    active: VecDeque<EntityId>,
    backlog: u64,
    /// Cumulative drops.
    pub drops: u64,
}

impl WfqQueue {
    /// A WFQ port with the given base quantum and aggregate limit;
    /// unknown entities default to weight 1.
    pub fn new(base_quantum: u64, limit_bytes: u64) -> WfqQueue {
        WfqQueue {
            base_quantum,
            limit_bytes,
            default_weight: 1,
            classes: BTreeMap::new(),
            active: VecDeque::new(),
            backlog: 0,
            drops: 0,
        }
    }

    /// Configure an entity's weight (create its class if needed).
    pub fn set_weight(&mut self, entity: EntityId, weight: u64) {
        assert!(weight > 0, "weights must be positive");
        self.classes.entry(entity).or_default().weight = weight;
    }

    /// Bytes released for an entity so far.
    pub fn released(&self, entity: EntityId) -> u64 {
        self.classes.get(&entity).map(|c| c.released).unwrap_or(0)
    }

    fn class_mut(&mut self, entity: EntityId) -> &mut WfqClass {
        let w = self.default_weight;
        let c = self.classes.entry(entity).or_default();
        if c.weight == 0 {
            c.weight = w;
        }
        c
    }
}

impl QueueDiscipline for WfqQueue {
    fn enqueue(&mut self, now: Time, pkt: Packet) -> Enqueued {
        if self.backlog + pkt.size as u64 > self.limit_bytes {
            self.drops += 1;
            return Enqueued::Dropped(pkt, DropCause::Taildrop);
        }
        self.backlog += pkt.size as u64;
        let entity = pkt.entity;
        let size = pkt.size as u64;
        let class = self.class_mut(entity);
        let was_empty = class.queue.is_empty();
        class.backlog += size;
        class.queue.push_back((pkt, now));
        if was_empty {
            class.deficit = 0;
            self.active.push_back(entity);
        }
        Enqueued::Ok
    }

    fn ready_at(&mut self, now: Time) -> Option<Time> {
        (!self.active.is_empty()).then_some(now)
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        for _ in 0..=self.active.len() {
            let entity = *self.active.front()?;
            let quantum = {
                let c = self.classes.get(&entity).expect("active class exists");
                self.base_quantum * c.weight
            };
            let c = self.classes.get_mut(&entity).expect("active class exists");
            let head = c.queue.front().expect("active class nonempty").0.size as u64;
            if head <= c.deficit {
                let (mut pkt, enq_at) = c.queue.pop_front().expect("nonempty");
                c.deficit -= head;
                c.backlog -= head;
                c.released += head;
                self.backlog -= head;
                pkt.pq_delay_ns += now.since(enq_at).as_nanos();
                if c.queue.is_empty() {
                    c.deficit = 0;
                    self.active.pop_front();
                }
                return Some(pkt);
            }
            c.deficit += quantum;
            self.active.rotate_left(1);
        }
        None
    }

    fn backlog_bytes(&self) -> u64 {
        self.backlog
    }

    fn backlog_pkts(&self) -> usize {
        self.classes.values().map(|c| c.queue.len()).sum()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_netsim::ids::{FlowId, NodeId};

    fn pkt(entity: u32, payload: u32) -> Packet {
        Packet::data(
            FlowId(1),
            EntityId(entity),
            NodeId(0),
            NodeId(1),
            0,
            payload,
            false,
            Time::ZERO,
        )
    }

    #[test]
    fn weighted_shares_follow_configured_weights() {
        let mut q = WfqQueue::new(1060, u64::MAX >> 1);
        q.set_weight(EntityId(1), 1);
        q.set_weight(EntityId(2), 3);
        for _ in 0..400 {
            q.enqueue(Time::ZERO, pkt(1, 1000));
            q.enqueue(Time::ZERO, pkt(2, 1000));
        }
        let mut bytes = BTreeMap::new();
        for _ in 0..200 {
            let p = q.dequeue(Time::ZERO).expect("backlogged");
            *bytes.entry(p.entity.0).or_insert(0u64) += p.size as u64;
        }
        let r = bytes[&2] as f64 / bytes[&1] as f64;
        assert!((2.5..=3.5).contains(&r), "3:1 weights gave ratio {r}");
    }

    #[test]
    fn unknown_entities_default_to_weight_one() {
        let mut q = WfqQueue::new(1060, u64::MAX >> 1);
        for _ in 0..100 {
            q.enqueue(Time::ZERO, pkt(7, 1000));
            q.enqueue(Time::ZERO, pkt(9, 1000));
        }
        let mut count = BTreeMap::new();
        for _ in 0..100 {
            let p = q.dequeue(Time::ZERO).expect("backlogged");
            *count.entry(p.entity.0).or_insert(0u32) += 1;
        }
        assert_eq!(count[&7], 50);
        assert_eq!(count[&9], 50);
    }

    #[test]
    fn aggregate_limit_applies_across_classes() {
        let mut q = WfqQueue::new(1060, 2120);
        assert!(matches!(q.enqueue(Time::ZERO, pkt(1, 1000)), Enqueued::Ok));
        assert!(matches!(q.enqueue(Time::ZERO, pkt(2, 1000)), Enqueued::Ok));
        assert!(matches!(
            q.enqueue(Time::ZERO, pkt(3, 1000)),
            Enqueued::Dropped(_, DropCause::Taildrop)
        ));
        assert_eq!(q.drops, 1);
    }

    #[test]
    fn empty_class_does_not_bank_deficit() {
        let mut q = WfqQueue::new(1060, u64::MAX >> 1);
        q.set_weight(EntityId(1), 10);
        q.enqueue(Time::ZERO, pkt(1, 1000));
        assert!(q.dequeue(Time::ZERO).is_some());
        // The class went idle: its deficit resets, so a later packet of a
        // competitor is not starved by banked credit.
        q.enqueue(Time::ZERO, pkt(1, 1000));
        q.enqueue(Time::ZERO, pkt(2, 1000));
        let mut seen = Vec::new();
        while let Some(p) = q.dequeue(Time::ZERO) {
            seen.push(p.entity.0);
        }
        assert_eq!(seen.len(), 2);
    }
}
