//! Deficit Round Robin per-flow fair queueing (Shreedhar & Varghese 1995)
//! — the related-work baseline representing per-flow-queue designs.
//!
//! Each flow gets its own FIFO; a round-robin scheduler gives every active
//! flow a quantum of deficit per round and releases packets while the head
//! fits the accumulated deficit. DRR equalizes throughput across *flows*,
//! which is exactly why it cannot provide the paper's *entity*-level
//! guarantees: an entity that opens more flows gets more bandwidth, and no
//! rate below the link capacity can be enforced when the queue is short.

use aq_netsim::ids::FlowId;
use aq_netsim::packet::Packet;
use aq_netsim::queue::{DropCause, Enqueued, QueueDiscipline};
use aq_netsim::time::Time;
use std::collections::{BTreeMap, VecDeque};

#[derive(Debug, Default)]
struct DrrFlow {
    queue: VecDeque<(Packet, Time)>,
    backlog: u64,
    deficit: u64,
}

/// The DRR discipline.
pub struct DrrQueue {
    /// Deficit added per flow per round (bytes); typically one MTU.
    pub quantum: u64,
    /// Shared byte limit across all flow queues.
    pub limit_bytes: u64,
    flows: BTreeMap<FlowId, DrrFlow>,
    /// Round-robin order of active flows.
    active: VecDeque<FlowId>,
    backlog: u64,
    /// Cumulative drops.
    pub drops: u64,
}

impl DrrQueue {
    /// A DRR queue with the given quantum and aggregate byte limit.
    pub fn new(quantum: u64, limit_bytes: u64) -> DrrQueue {
        DrrQueue {
            quantum,
            limit_bytes,
            flows: BTreeMap::new(),
            active: VecDeque::new(),
            backlog: 0,
            drops: 0,
        }
    }

    /// Number of flows currently holding packets.
    pub fn active_flows(&self) -> usize {
        self.active.len()
    }
}

impl QueueDiscipline for DrrQueue {
    fn enqueue(&mut self, now: Time, pkt: Packet) -> Enqueued {
        if self.backlog + pkt.size as u64 > self.limit_bytes {
            self.drops += 1;
            return Enqueued::Dropped(pkt, DropCause::Taildrop);
        }
        let flow = pkt.flow;
        let f = self.flows.entry(flow).or_default();
        let was_empty = f.queue.is_empty();
        f.backlog += pkt.size as u64;
        self.backlog += pkt.size as u64;
        f.queue.push_back((pkt, now));
        if was_empty {
            f.deficit = 0;
            self.active.push_back(flow);
        }
        Enqueued::Ok
    }

    fn ready_at(&mut self, now: Time) -> Option<Time> {
        (!self.active.is_empty()).then_some(now)
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        // Classic DRR, incrementalized to one packet per call: the flow at
        // the head of the active list is served while its head packet fits
        // its deficit (staying at the head, like the inner `while` of the
        // original algorithm); when the head no longer fits, the flow
        // receives one quantum and rotates to the back. Quantum ≥ max
        // packet size bounds this loop to one full rotation.
        for _ in 0..=self.active.len() {
            let flow = *self.active.front()?;
            let f = self.flows.get_mut(&flow).expect("active flow exists");
            let head_size = f.queue.front().expect("active flow nonempty").0.size as u64;
            if head_size <= f.deficit {
                let (mut pkt, enq_at) = f.queue.pop_front().expect("nonempty");
                f.deficit -= head_size;
                f.backlog -= head_size;
                self.backlog -= head_size;
                pkt.pq_delay_ns += now.since(enq_at).as_nanos();
                if f.queue.is_empty() {
                    f.deficit = 0;
                    self.active.pop_front();
                }
                return Some(pkt);
            }
            f.deficit += self.quantum;
            self.active.rotate_left(1);
        }
        None
    }

    fn backlog_bytes(&self) -> u64 {
        self.backlog
    }

    fn backlog_pkts(&self) -> usize {
        self.flows.values().map(|f| f.queue.len()).sum()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_netsim::ids::{EntityId, NodeId};

    fn pkt(flow: u32, size: u32) -> Packet {
        Packet::data(
            FlowId(flow),
            EntityId(1),
            NodeId(0),
            NodeId(1),
            0,
            size,
            false,
            Time::ZERO,
        )
    }

    #[test]
    fn interleaves_two_backlogged_flows_fairly() {
        // Quantum equal to the wire size gives perfect alternation.
        let mut q = DrrQueue::new(1060, 1_000_000);
        for _ in 0..4 {
            q.enqueue(Time::ZERO, pkt(1, 1000));
            q.enqueue(Time::ZERO, pkt(2, 1000));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.dequeue(Time::ZERO))
            .map(|p| p.flow.0)
            .collect();
        assert_eq!(order.len(), 8);
        // Perfect alternation under equal packet sizes.
        let f1 = order.iter().filter(|f| **f == 1).count();
        assert_eq!(f1, 4);
        for w in order.windows(2) {
            assert_ne!(w[0], w[1], "flows must interleave: {order:?}");
        }
    }

    #[test]
    fn byte_fairness_with_unequal_packet_sizes() {
        // Flow 1 sends 1000-byte packets, flow 2 sends 250-byte packets;
        // DRR equalizes *bytes*, so flow 2 releases ~4 packets per flow-1
        // packet.
        let mut q = DrrQueue::new(1060, 10_000_000);
        for _ in 0..8 {
            q.enqueue(Time::ZERO, pkt(1, 1000));
        }
        for _ in 0..32 {
            q.enqueue(Time::ZERO, pkt(2, 190)); // 250 B on the wire
        }
        let mut bytes = BTreeMap::new();
        for _ in 0..20 {
            let p = q.dequeue(Time::ZERO).expect("backlogged");
            *bytes.entry(p.flow.0).or_insert(0u64) += p.size as u64;
        }
        let b1 = bytes[&1] as f64;
        let b2 = bytes[&2] as f64;
        assert!((b1 / b2 - 1.0).abs() < 0.35, "byte shares {b1} vs {b2}");
    }

    #[test]
    fn single_flow_degenerates_to_fifo() {
        let mut q = DrrQueue::new(1500, 1_000_000);
        for i in 0..3 {
            let mut p = pkt(7, 1000);
            p.uid = i;
            q.enqueue(Time::ZERO, p);
        }
        let uids: Vec<u64> = std::iter::from_fn(|| q.dequeue(Time::ZERO))
            .map(|p| p.uid)
            .collect();
        assert_eq!(uids, vec![0, 1, 2]);
        assert_eq!(q.active_flows(), 0);
    }

    #[test]
    fn aggregate_limit_drops() {
        let mut q = DrrQueue::new(1500, 2120);
        assert!(matches!(q.enqueue(Time::ZERO, pkt(1, 1000)), Enqueued::Ok));
        assert!(matches!(q.enqueue(Time::ZERO, pkt(2, 1000)), Enqueued::Ok));
        assert!(matches!(
            q.enqueue(Time::ZERO, pkt(3, 1000)),
            Enqueued::Dropped(_, DropCause::Taildrop)
        ));
        assert_eq!(q.drops, 1);
    }
}
