//! HTB-style token-bucket shaping — the paper's *pre-determined rate
//! limiter* (PRL) baseline.
//!
//! The shaper is a [`QueueDiscipline`] installed on a host's uplink port.
//! Packets are classified into classes (by entity, by destination, or all
//! together); each class owns a token bucket refilled at its configured
//! rate, and a class may release a packet only when its bucket holds
//! enough tokens. Classes are strict: there is **no borrowing** between
//! them — this is precisely the non-work-conserving weakness of
//! pre-determined limiting that the paper's Fig. 6/7 exercise.

use aq_netsim::ids::{EntityId, NodeId};
use aq_netsim::packet::Packet;
use aq_netsim::queue::{DropCause, Enqueued, QueueDiscipline};
use aq_netsim::time::{Duration, Rate, Time, NS_PER_SEC};
use std::collections::{BTreeMap, VecDeque};

const SUB: u64 = 1 << 16;

/// A token bucket: `rate` tokens/s (in bytes), capped at `burst` bytes.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: Rate,
    burst_bytes: u64,
    tokens_sub: u64,
    last_refill: Time,
}

impl TokenBucket {
    /// A bucket that starts full.
    pub fn new(rate: Rate, burst_bytes: u64) -> TokenBucket {
        TokenBucket {
            rate,
            burst_bytes,
            tokens_sub: burst_bytes * SUB,
            last_refill: Time::ZERO,
        }
    }

    /// Configured rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Retarget the refill rate (used by dynamic rate limiters).
    pub fn set_rate(&mut self, now: Time, rate: Rate) {
        self.refill(now);
        self.rate = rate;
    }

    fn refill(&mut self, now: Time) {
        if now <= self.last_refill {
            return;
        }
        let delta = now - self.last_refill;
        let add = (delta.as_nanos() as u128 * self.rate.as_bps() as u128 * SUB as u128
            / (8 * NS_PER_SEC as u128)) as u64;
        self.tokens_sub = (self.tokens_sub + add).min(self.burst_bytes * SUB);
        self.last_refill = now;
    }

    /// Whole tokens (bytes) available at `now`.
    pub fn available(&mut self, now: Time) -> u64 {
        self.refill(now);
        self.tokens_sub / SUB
    }

    /// Consume `bytes` tokens if available; returns success.
    pub fn try_consume(&mut self, now: Time, bytes: u64) -> bool {
        self.refill(now);
        if self.tokens_sub >= bytes * SUB {
            self.tokens_sub -= bytes * SUB;
            true
        } else {
            false
        }
    }

    /// Earliest time `bytes` tokens will be available (≥ `now`), or
    /// [`Time::MAX`] if they never will be (zero rate, or a request larger
    /// than the burst capacity).
    pub fn ready_time(&mut self, now: Time, bytes: u64) -> Time {
        self.refill(now);
        let need = bytes * SUB;
        if self.tokens_sub >= need {
            return now;
        }
        if self.rate.as_bps() == 0 || bytes > self.burst_bytes {
            return Time::MAX;
        }
        let deficit_sub = need - self.tokens_sub;
        let ns = (deficit_sub as u128 * 8 * NS_PER_SEC as u128)
            .div_ceil(SUB as u128 * self.rate.as_bps() as u128);
        now + Duration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }
}

/// How the shaper assigns packets to classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classify {
    /// All traffic in one class (one rate limiter for the host/VM).
    All,
    /// One class per owning entity.
    ByEntity,
    /// One class per destination host (ElasticSwitch-style VM-pair
    /// limiting).
    ByDst,
}

/// Key of a class under a given classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ClassKey {
    /// The single class of [`Classify::All`].
    All,
    /// A [`Classify::ByEntity`] class.
    Entity(EntityId),
    /// A [`Classify::ByDst`] class.
    Dst(NodeId),
}

#[derive(Debug)]
struct HtbClass {
    bucket: TokenBucket,
    queue: VecDeque<(Packet, Time)>,
    backlog: u64,
    /// Cumulative bytes released (demand measurement for DRL).
    pub released_bytes: u64,
    /// Cumulative taildrops in this class.
    pub drops: u64,
}

/// The HTB shaper discipline.
pub struct HtbShaper {
    classify: Classify,
    default_rate: Rate,
    burst_bytes: u64,
    per_class_limit: u64,
    classes: BTreeMap<ClassKey, HtbClass>,
}

impl HtbShaper {
    /// A shaper whose classes default to `default_rate`, with the given
    /// bucket burst and per-class buffer limit.
    pub fn new(
        classify: Classify,
        default_rate: Rate,
        burst_bytes: u64,
        per_class_limit: u64,
    ) -> HtbShaper {
        HtbShaper {
            classify,
            default_rate,
            burst_bytes,
            per_class_limit,
            classes: BTreeMap::new(),
        }
    }

    fn key_for(&self, pkt: &Packet) -> ClassKey {
        match self.classify {
            Classify::All => ClassKey::All,
            Classify::ByEntity => ClassKey::Entity(pkt.entity),
            Classify::ByDst => ClassKey::Dst(pkt.dst),
        }
    }

    fn class_mut(&mut self, key: ClassKey) -> &mut HtbClass {
        let (rate, burst) = (self.default_rate, self.burst_bytes);
        self.classes.entry(key).or_insert_with(|| HtbClass {
            bucket: TokenBucket::new(rate, burst),
            queue: VecDeque::new(),
            backlog: 0,
            released_bytes: 0,
            drops: 0,
        })
    }

    /// Set (or pre-create with) a class's rate.
    pub fn set_class_rate(&mut self, now: Time, key: ClassKey, rate: Rate) {
        self.class_mut(key).bucket.set_rate(now, rate);
    }

    /// Current rate of a class, if it exists.
    pub fn class_rate(&self, key: ClassKey) -> Option<Rate> {
        self.classes.get(&key).map(|c| c.bucket.rate())
    }

    /// Bytes released by a class so far (demand signal for DRL).
    pub fn class_released(&self, key: ClassKey) -> u64 {
        self.classes
            .get(&key)
            .map(|c| c.released_bytes)
            .unwrap_or(0)
    }

    /// Bytes currently queued in a class (backlog = unmet demand).
    pub fn class_backlog(&self, key: ClassKey) -> u64 {
        self.classes.get(&key).map(|c| c.backlog).unwrap_or(0)
    }

    /// Keys of all classes that have carried traffic.
    pub fn class_keys(&self) -> Vec<ClassKey> {
        self.classes.keys().copied().collect()
    }
}

impl QueueDiscipline for HtbShaper {
    fn enqueue(&mut self, now: Time, pkt: Packet) -> Enqueued {
        // A packet larger than the bucket burst could never be released
        // and would wedge its class; configure burst >= MTU.
        if pkt.size as u64 > self.burst_bytes {
            return Enqueued::Dropped(pkt, DropCause::Shaper);
        }
        let key = self.key_for(&pkt);
        let limit = self.per_class_limit;
        let class = self.class_mut(key);
        if class.backlog + pkt.size as u64 > limit {
            class.drops += 1;
            return Enqueued::Dropped(pkt, DropCause::Shaper);
        }
        class.backlog += pkt.size as u64;
        class.queue.push_back((pkt, now));
        Enqueued::Ok
    }

    fn ready_at(&mut self, now: Time) -> Option<Time> {
        self.classes
            .values_mut()
            .filter(|c| !c.queue.is_empty())
            .map(|c| {
                let head = c.queue.front().expect("nonempty").0.size as u64;
                c.bucket.ready_time(now, head)
            })
            .min()
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        // Release from the eligible class with the earliest ready time
        // (deterministic tie-break by key order).
        let mut best: Option<(Time, ClassKey)> = None;
        for (key, c) in self.classes.iter_mut() {
            if c.queue.is_empty() {
                continue;
            }
            let head = c.queue.front().expect("nonempty").0.size as u64;
            let t = c.bucket.ready_time(now, head);
            if t <= now && best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, *key));
            }
        }
        let (_, key) = best?;
        let class = self.classes.get_mut(&key).expect("chosen above");
        let (mut pkt, enq_at) = class.queue.pop_front().expect("nonempty");
        let consumed = class.bucket.try_consume(now, pkt.size as u64);
        debug_assert!(consumed, "ready_time promised tokens");
        class.backlog -= pkt.size as u64;
        class.released_bytes += pkt.size as u64;
        pkt.pq_delay_ns += now.since(enq_at).as_nanos();
        Some(pkt)
    }

    fn backlog_bytes(&self) -> u64 {
        self.classes.values().map(|c| c.backlog).sum()
    }

    fn backlog_pkts(&self) -> usize {
        self.classes.values().map(|c| c.queue.len()).sum()
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aq_netsim::ids::FlowId;

    fn pkt(entity: u32, dst: u32) -> Packet {
        Packet::data(
            FlowId(1),
            EntityId(entity),
            NodeId(0),
            NodeId(dst),
            0,
            1000,
            false,
            Time::ZERO,
        )
    }

    #[test]
    fn bucket_paces_to_rate() {
        // 1 Gbps, burst = one packet.
        let mut b = TokenBucket::new(Rate::from_gbps(1), 1060);
        assert!(b.try_consume(Time::ZERO, 1060));
        assert!(!b.try_consume(Time::ZERO, 1060));
        // 1060 bytes at 1 Gbps take 8480 ns to refill.
        assert_eq!(b.ready_time(Time::ZERO, 1060), Time::from_nanos(8480));
        assert!(b.try_consume(Time::from_nanos(8480), 1060));
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut b = TokenBucket::new(Rate::from_gbps(1), 2000);
        // After a long idle period, tokens cap at the burst size.
        assert_eq!(b.available(Time::from_secs(10)), 2000);
    }

    #[test]
    fn zero_rate_class_never_releases() {
        let mut b = TokenBucket::new(Rate::ZERO, 0);
        assert_eq!(b.ready_time(Time::ZERO, 100), Time::MAX);
    }

    #[test]
    fn shaper_releases_at_class_rate() {
        let mut s = HtbShaper::new(Classify::All, Rate::from_gbps(1), 1060, 1_000_000);
        for _ in 0..3 {
            assert!(matches!(s.enqueue(Time::ZERO, pkt(1, 2)), Enqueued::Ok));
        }
        // First packet: burst tokens available immediately.
        assert_eq!(s.ready_at(Time::ZERO), Some(Time::ZERO));
        assert!(s.dequeue(Time::ZERO).is_some());
        // Second must wait one serialization-at-1Gbps interval.
        let t2 = s.ready_at(Time::ZERO).expect("queued");
        assert_eq!(t2, Time::from_nanos(8480));
        assert!(s.dequeue(Time::ZERO).is_none());
        assert!(s.dequeue(t2).is_some());
    }

    #[test]
    fn classes_do_not_borrow() {
        let mut s = HtbShaper::new(Classify::ByEntity, Rate::from_gbps(1), 1060, 1_000_000);
        s.enqueue(Time::ZERO, pkt(1, 2));
        s.enqueue(Time::ZERO, pkt(1, 2));
        // Entity 1 exhausted its burst after one packet; entity 2 idle.
        assert!(s.dequeue(Time::ZERO).is_some());
        // Even though entity 2's bucket is full, entity 1 cannot use it.
        assert!(s.dequeue(Time::ZERO).is_none());
        let t = s.ready_at(Time::ZERO).expect("queued");
        assert_eq!(t, Time::from_nanos(8480));
    }

    #[test]
    fn by_dst_classification_separates_destinations() {
        let mut s = HtbShaper::new(Classify::ByDst, Rate::from_gbps(1), 1060, 1_000_000);
        s.enqueue(Time::ZERO, pkt(1, 2));
        s.enqueue(Time::ZERO, pkt(1, 3));
        // Both destinations have their own burst: both release at t=0.
        assert!(s.dequeue(Time::ZERO).is_some());
        assert!(s.dequeue(Time::ZERO).is_some());
        assert_eq!(s.class_keys().len(), 2);
    }

    #[test]
    fn per_class_buffer_taildrops() {
        let mut s = HtbShaper::new(Classify::All, Rate::from_gbps(1), 1060, 2120);
        assert!(matches!(s.enqueue(Time::ZERO, pkt(1, 2)), Enqueued::Ok));
        assert!(matches!(s.enqueue(Time::ZERO, pkt(1, 2)), Enqueued::Ok));
        assert!(matches!(
            s.enqueue(Time::ZERO, pkt(1, 2)),
            Enqueued::Dropped(_, DropCause::Shaper)
        ));
    }

    #[test]
    fn set_class_rate_applies_from_now() {
        let mut s = HtbShaper::new(Classify::All, Rate::from_gbps(1), 1060, 1_000_000);
        s.enqueue(Time::ZERO, pkt(1, 2));
        s.enqueue(Time::ZERO, pkt(1, 2));
        s.dequeue(Time::ZERO);
        s.set_class_rate(Time::ZERO, ClassKey::All, Rate::from_gbps(2));
        // Refill now happens at 2 Gbps: 4240 ns instead of 8480.
        assert_eq!(s.ready_at(Time::ZERO), Some(Time::from_nanos(4240)));
    }
}
