//! ElasticSwitch-style *dynamic rate limiting* (DRL) — the paper's second
//! rate-limiting baseline (Popa et al., SIGCOMM 2013).
//!
//! ElasticSwitch gives each VM hose-model guarantees (`B_out`, `B_in`) and
//! runs two layers every adjustment interval (15 ms in the paper's
//! evaluation):
//!
//! * **Guarantee partitioning (GP)**: each VM pair `(s, d)` is guaranteed
//!   `min(B_out(s)/|active dsts of s|, B_in(d)/|active srcs of d|)`;
//! * **Rate allocation (RA)**: pair limits probe above the guarantee for
//!   work conservation — multiplicative increase while demand is unmet and
//!   no congestion is observed on the pair's path, decrease toward the
//!   guarantee on congestion.
//!
//! The agent measures demand from each sender's [`HtbShaper`] (classified
//! by destination) and observes congestion as taildrop deltas on the ports
//! a pair traverses. Faithfulness notes: real ElasticSwitch infers
//! congestion from endpoint feedback rather than switch counters, and its
//! increase law is adaptive; both simplifications preserve what the AQ
//! paper leans on — allocation lags demand by the adjustment interval, so
//! bursty workloads under-utilize and inbound guarantees are held only
//! approximately.

use crate::htb::{ClassKey, HtbShaper};
use aq_netsim::ids::{NodeId, PortId};
use aq_netsim::sim::{Agent, AgentCtx, Network};
use aq_netsim::stats::StatsHub;
use aq_netsim::time::{Duration, Rate, NS_PER_SEC};
use std::collections::BTreeMap;

/// One managed VM.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// The VM's host node.
    pub host: NodeId,
    /// The VM's uplink port, whose discipline must be an [`HtbShaper`]
    /// with [`crate::htb::Classify::ByDst`].
    pub uplink: PortId,
    /// Hose-model outbound guarantee.
    pub out_guarantee: Rate,
    /// Hose-model inbound guarantee.
    pub in_guarantee: Rate,
}

#[derive(Debug, Clone, Copy, Default)]
struct PairState {
    rate_bps: u64,
    last_released: u64,
}

/// The DRL control agent.
pub struct ElasticSwitch {
    vms: Vec<VmConfig>,
    interval: Duration,
    pairs: BTreeMap<(NodeId, NodeId), PairState>,
    last_port_drops: Vec<u64>,
    /// When set, pair rates never exceed the hose-model caps
    /// `min(B_out(s)/|D_s|, B_in(d)/|S_d|)` — the VM-traffic-profile
    /// deployment (Table 3), where the profile is "no more, no less".
    /// When clear, RA probes above guarantees for work conservation
    /// (the Fig. 6/7 deployment).
    pub cap_to_hose: bool,
    /// Adjustment rounds executed.
    pub rounds: u64,
}

/// Multiplicative probe-up factor per interval while demand is unmet.
const PROBE_UP: f64 = 1.3;
/// Additive probe floor so a silent pair can restart (bits/s).
const PROBE_FLOOR: u64 = 50_000_000;
/// Decrease factor toward the guarantee on observed congestion.
const DECREASE: f64 = 0.7;
/// A pair is "hungry" when demand exceeds this fraction of its limit.
const HUNGRY: f64 = 0.9;

impl ElasticSwitch {
    /// Build the agent for the given VMs with the classic 15 ms interval.
    pub fn new(vms: Vec<VmConfig>) -> ElasticSwitch {
        ElasticSwitch::with_interval(vms, Duration::from_millis(15))
    }

    /// Build with a custom adjustment interval (ablations).
    pub fn with_interval(vms: Vec<VmConfig>, interval: Duration) -> ElasticSwitch {
        ElasticSwitch {
            vms,
            interval,
            pairs: BTreeMap::new(),
            last_port_drops: Vec::new(),
            cap_to_hose: false,
            rounds: 0,
        }
    }

    /// Hose-capped variant for VM traffic profiles (Table 3).
    pub fn with_hose_cap(vms: Vec<VmConfig>) -> ElasticSwitch {
        let mut e = ElasticSwitch::new(vms);
        e.cap_to_hose = true;
        e
    }

    /// Current limit of a managed pair, if any.
    pub fn pair_rate(&self, src: NodeId, dst: NodeId) -> Option<Rate> {
        self.pairs
            .get(&(src, dst))
            .map(|p| Rate::from_bps(p.rate_bps))
    }

    fn in_guarantee(&self, host: NodeId) -> Option<Rate> {
        self.vms
            .iter()
            .find(|v| v.host == host)
            .map(|v| v.in_guarantee)
    }

    /// Ports traversed from `src` to `dst` under current routing. With
    /// ECMP the pair's flows may spread over several paths; the congestion
    /// probe walks one representative path per pair (hashed from the
    /// endpoints), which matches ElasticSwitch's endpoint-level visibility.
    fn path_ports(net: &Network, src: NodeId, dst: NodeId) -> Vec<PortId> {
        let rep = aq_netsim::ids::FlowId(src.0.wrapping_mul(31).wrapping_add(dst.0));
        let mut ports = Vec::new();
        let mut at = src;
        while at != dst {
            let Some(port) = net.route(at, dst, rep) else {
                break;
            };
            ports.push(port);
            at = net.links[net.ports[port.index()].link.index()].to_node;
        }
        ports
    }

    fn adjust(&mut self, net: &mut Network, ctx: &AgentCtx) {
        let now = ctx.now;
        let dt_ns = self.interval.as_nanos().max(1);
        // Congestion: ports whose drop counters advanced this interval.
        let mut congested = vec![false; net.ports.len()];
        self.last_port_drops.resize(net.ports.len(), 0);
        for (i, p) in net.ports.iter().enumerate() {
            if p.stats.queue_drops > self.last_port_drops[i] {
                congested[i] = true;
                self.last_port_drops[i] = p.stats.queue_drops;
            }
        }
        // Pass 1: measure per-pair demand from every sender's shaper.
        let mut demand_bps: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
        for vm in &self.vms {
            let host = vm.host;
            let Some(shaper) = net.discipline_mut::<HtbShaper>(vm.uplink) else {
                continue;
            };
            for key in shaper.class_keys() {
                let ClassKey::Dst(dst) = key else { continue };
                let released = shaper.class_released(key);
                let backlog = shaper.class_backlog(key);
                let pair = self.pairs.entry((host, dst)).or_default();
                let delta = released.saturating_sub(pair.last_released);
                pair.last_released = released;
                let bps =
                    ((delta + backlog) as u128 * 8 * NS_PER_SEC as u128 / dt_ns as u128) as u64;
                demand_bps.insert((host, dst), bps);
            }
        }
        // Active sets for guarantee partitioning.
        let mut active_dsts: BTreeMap<NodeId, u64> = BTreeMap::new();
        let mut active_srcs: BTreeMap<NodeId, u64> = BTreeMap::new();
        for ((s, d), bps) in &demand_bps {
            if *bps > 0 {
                *active_dsts.entry(*s).or_default() += 1;
                *active_srcs.entry(*d).or_default() += 1;
            }
        }
        // Pass 2: GP + RA per pair, then apply to the shaper class.
        for vm in &self.vms {
            let s = vm.host;
            let keys: Vec<(NodeId, u64)> = demand_bps
                .iter()
                .filter(|((src, _), _)| *src == s)
                .map(|((_, d), bps)| (*d, *bps))
                .collect();
            for (d, demand) in keys {
                let n_dsts = active_dsts.get(&s).copied().unwrap_or(0).max(1);
                let n_srcs = active_srcs.get(&d).copied().unwrap_or(0).max(1);
                let g_out = vm.out_guarantee.as_bps() / n_dsts;
                let g_in = self
                    .in_guarantee(d)
                    .map(|r| r.as_bps() / n_srcs)
                    .unwrap_or(u64::MAX);
                let g = g_out.min(g_in);
                let pair = self.pairs.entry((s, d)).or_default();
                if pair.rate_bps == 0 {
                    pair.rate_bps = g.max(PROBE_FLOOR);
                }
                let path_congested = Self::path_ports(net, s, d)
                    .iter()
                    .any(|p| congested[p.index()]);
                pair.rate_bps = if path_congested {
                    ((pair.rate_bps as f64 * DECREASE) as u64).max(g)
                } else if demand as f64 >= pair.rate_bps as f64 * HUNGRY {
                    ((pair.rate_bps as f64 * PROBE_UP) as u64 + PROBE_FLOOR).max(g)
                } else {
                    // Track demand down, keeping probing headroom and never
                    // dropping below the guarantee.
                    ((demand as f64 * 1.2) as u64 + PROBE_FLOOR).max(g)
                };
                if self.cap_to_hose {
                    pair.rate_bps = pair.rate_bps.min(g.max(1));
                }
                let rate = Rate::from_bps(pair.rate_bps);
                if let Some(shaper) = net.discipline_mut::<HtbShaper>(vm.uplink) {
                    shaper.set_class_rate(now, ClassKey::Dst(d), rate);
                }
            }
        }
        self.rounds += 1;
    }
}

impl Agent for ElasticSwitch {
    fn on_start(&mut self, _net: &mut Network, _stats: &mut StatsHub, ctx: &mut AgentCtx) {
        ctx.arm_timer_in(self.interval, 0);
    }

    fn on_timer(
        &mut self,
        net: &mut Network,
        _stats: &mut StatsHub,
        ctx: &mut AgentCtx,
        _token: u64,
    ) {
        self.adjust(net, ctx);
        ctx.arm_timer_in(self.interval, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::htb::Classify;
    use aq_netsim::queue::FifoConfig;
    use aq_netsim::time::Time;
    use aq_netsim::topology::NetBuilder;

    /// Star of 3 VM hosts with ByDst shapers on their uplinks.
    fn star_with_shapers(rate: Rate) -> (Network, Vec<VmConfig>) {
        let mut b = NetBuilder::new();
        let sw = b.add_switch();
        let mut vms = Vec::new();
        for _ in 0..3 {
            let h = b.add_host();
            let up = b.half_link(
                h,
                sw,
                rate,
                Duration::from_micros(5),
                Box::new(HtbShaper::new(
                    Classify::ByDst,
                    Rate::from_gbps(5),
                    30_000,
                    40_000_000,
                )),
            );
            b.half_link(
                sw,
                h,
                rate,
                Duration::from_micros(5),
                Box::new(aq_netsim::queue::FifoQueue::new(FifoConfig::default())),
            );
            vms.push(VmConfig {
                host: h,
                uplink: up,
                out_guarantee: Rate::from_gbps(5),
                in_guarantee: Rate::from_gbps(5),
            });
        }
        (b.build(), vms)
    }

    fn fake_demand(net: &mut Network, vm: &VmConfig, dst: NodeId, backlog_pkts: u32) {
        use aq_netsim::ids::{EntityId, FlowId};
        use aq_netsim::packet::Packet;
        use aq_netsim::queue::QueueDiscipline;
        let shaper = net.discipline_mut::<HtbShaper>(vm.uplink).expect("shaper");
        for _ in 0..backlog_pkts {
            let p = Packet::data(
                FlowId(1),
                EntityId(1),
                vm.host,
                dst,
                0,
                1000,
                false,
                Time::ZERO,
            );
            let _ = shaper.enqueue(Time::ZERO, p);
        }
    }

    #[test]
    fn guarantee_partitioning_splits_inbound_across_senders() {
        let (mut net, vms) = star_with_shapers(Rate::from_gbps(25));
        // VMs 1 and 2 both demand toward VM 0.
        let dst = vms[0].host;
        fake_demand(&mut net, &vms[1], dst, 100);
        fake_demand(&mut net, &vms[2], dst, 100);
        let mut agent = ElasticSwitch::new(vms.clone());
        let mut stats = StatsHub::new();
        let mut ctx = AgentCtx::new(aq_netsim::ids::AgentId(0), Time::from_millis(15));
        agent.on_timer(&mut net, &mut stats, &mut ctx, 0);
        // Each sender's guarantee toward VM 0 is min(5, 5/2) = 2.5 Gbps;
        // probing may push above it but the pair state starts at g.
        let r1 = agent.pair_rate(vms[1].host, dst).expect("managed");
        let r2 = agent.pair_rate(vms[2].host, dst).expect("managed");
        assert!(r1.as_bps() >= 2_500_000_000, "r1 {r1}");
        assert!(r2.as_bps() >= 2_500_000_000, "r2 {r2}");
        // Applied to the shapers too.
        let s1 = net
            .discipline_mut::<HtbShaper>(vms[1].uplink)
            .expect("shaper")
            .class_rate(ClassKey::Dst(dst))
            .expect("class");
        assert_eq!(s1, r1);
    }

    #[test]
    fn probing_ramps_rate_while_hungry() {
        let (mut net, vms) = star_with_shapers(Rate::from_gbps(25));
        let dst = vms[0].host;
        let mut agent = ElasticSwitch::new(vms.clone());
        let mut stats = StatsHub::new();
        let mut last = 0;
        for round in 1..=5u64 {
            // Keep a heavy backlog (≈11 Gbps of unmet demand per interval)
            // so the pair always looks hungry.
            fake_demand(&mut net, &vms[1], dst, 20_000);
            let mut ctx = AgentCtx::new(aq_netsim::ids::AgentId(0), Time::from_millis(15 * round));
            agent.on_timer(&mut net, &mut stats, &mut ctx, 0);
            let r = agent.pair_rate(vms[1].host, dst).expect("managed").as_bps();
            assert!(r >= last, "rate should ramp: {r} vs {last}");
            last = r;
        }
        assert!(last > 5_000_000_000, "probing exceeded guarantee: {last}");
    }
}
