//! Property tests for the baseline substrates: a token bucket must never
//! over-deliver, and DRR's deficit mechanism must bound per-flow byte
//! imbalance by one quantum plus one packet.

use aq_baselines::{DrrQueue, TokenBucket};
use aq_netsim::ids::{EntityId, FlowId, NodeId};
use aq_netsim::packet::Packet;
use aq_netsim::queue::{Enqueued, QueueDiscipline};
use aq_netsim::time::{Rate, Time, NS_PER_SEC};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn pkt(flow: u32, payload: u32) -> Packet {
    Packet::data(
        FlowId(flow),
        EntityId(1),
        NodeId(0),
        NodeId(1),
        0,
        payload,
        false,
        Time::ZERO,
    )
}

proptest! {
    /// Over any schedule of consume attempts, the bucket releases at most
    /// `burst + rate·elapsed` bytes — the defining shaper property.
    #[test]
    fn token_bucket_never_over_delivers(
        attempts in prop::collection::vec((0u64..100_000, 40u64..9000), 1..300),
        bps in 1_000_000u64..100_000_000_000,
        burst in 1_000u64..1_000_000,
    ) {
        let mut b = TokenBucket::new(Rate::from_bps(bps), burst);
        let mut t = 0u64;
        let mut delivered = 0u64;
        for (gap_ns, size) in attempts {
            t += gap_ns;
            if b.try_consume(Time::from_nanos(t), size) {
                delivered += size;
            }
        }
        let budget = burst
            + (t as u128 * bps as u128 / (8 * NS_PER_SEC as u128)) as u64
            + 1;
        prop_assert!(
            delivered <= budget,
            "delivered {delivered} > budget {budget}"
        );
    }

    /// `ready_time` never lies: consuming at the reported instant succeeds.
    #[test]
    fn token_bucket_ready_time_is_sufficient(
        bps in 1_000_000u64..100_000_000_000,
        burst in 1_000u64..100_000,
        size in 40u64..9_000,
        drain in 0u64..50_000,
    ) {
        let mut b = TokenBucket::new(Rate::from_bps(bps), burst);
        // Drain some arbitrary amount first.
        let _ = b.try_consume(Time::ZERO, drain.min(burst));
        let at = b.ready_time(Time::ZERO, size);
        if at < Time::MAX {
            prop_assert!(b.try_consume(at, size), "promised tokens at {at}");
        }
    }

    /// With every flow persistently backlogged, DRR byte service per flow
    /// deviates from the ideal equal share by at most quantum + max packet.
    #[test]
    fn drr_bounds_per_flow_imbalance(
        sizes in prop::collection::vec(100u32..1400, 2..6),
        rounds in 20usize..100,
    ) {
        let n = sizes.len();
        let quantum = 1500u64;
        let mut q = DrrQueue::new(quantum, u64::MAX >> 1);
        // Keep every flow deeply backlogged.
        for _ in 0..(rounds * 4) {
            for (i, payload) in sizes.iter().enumerate() {
                q.enqueue(Time::ZERO, pkt(i as u32, *payload));
            }
        }
        let mut served: BTreeMap<u32, u64> = BTreeMap::new();
        for _ in 0..(rounds * n) {
            let p = q.dequeue(Time::ZERO).expect("backlogged");
            *served.entry(p.flow.0).or_default() += p.size as u64;
        }
        let max_pkt = sizes.iter().map(|s| *s as u64 + 60).max().expect("nonempty");
        let vals: Vec<u64> = served.values().copied().collect();
        let hi = *vals.iter().max().expect("nonempty");
        let lo = *vals.iter().min().expect("nonempty");
        // Over k full rounds each flow receives k·quantum ± (quantum+max).
        let bound = 2 * (quantum + max_pkt);
        prop_assert!(
            hi - lo <= bound,
            "byte imbalance {} > bound {bound} (served {served:?})",
            hi - lo
        );
    }

    /// DRR conserves packets: everything enqueued (and not dropped)
    /// eventually dequeues exactly once, in per-flow FIFO order.
    #[test]
    fn drr_conserves_and_keeps_flow_order(
        flows in prop::collection::vec(0u32..5, 1..200),
    ) {
        let mut q = DrrQueue::new(1500, u64::MAX >> 1);
        let mut enqueued: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for (uid, f) in flows.iter().enumerate() {
            let mut p = pkt(*f, 500);
            p.uid = uid as u64;
            match q.enqueue(Time::ZERO, p) {
                Enqueued::Ok => enqueued.entry(*f).or_default().push(uid as u64),
                Enqueued::Dropped(..) => unreachable!("limit is huge"),
            }
        }
        let mut dequeued: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        while let Some(p) = q.dequeue(Time::ZERO) {
            dequeued.entry(p.flow.0).or_default().push(p.uid);
        }
        prop_assert_eq!(enqueued, dequeued);
    }
}
