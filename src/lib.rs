//! Facade crate re-exporting the full Augmented Queue stack.
pub use aq_baselines as baselines;
pub use aq_core as core;
pub use aq_netsim as netsim;
pub use aq_transport as transport;
pub use aq_workloads as workloads;
