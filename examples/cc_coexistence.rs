//! CC coexistence: DCTCP, CUBIC, and Swift sharing one bottleneck —
//! first through a plain physical queue, then with one AQ per CC entity.
//!
//! ```text
//! cargo run --release --example cc_coexistence
//! ```
//!
//! Reproduces the paper's §2.2 motivation and §5.3 resolution: through a
//! shared PQ the ECN-based algorithm captures the link and the delay-based
//! one starves; with per-entity AQs each algorithm receives its own
//! feedback signal (loss / virtual-threshold ECN / virtual delay) and the
//! three split the link evenly.

use aq_bench::report::RunReport;
use augmented_queue::core::{
    AqController, AqPipeline, AqRequest, BandwidthDemand, CcPolicy, LimitPolicy, Position,
};
use augmented_queue::netsim::packet::AqTag;
use augmented_queue::netsim::queue::FifoConfig;
use augmented_queue::netsim::time::{Duration, Rate, Time};
use augmented_queue::netsim::topology::dumbbell;
use augmented_queue::netsim::{EntityId, Simulator};
use augmented_queue::transport::{CcAlgo, DelaySignal, FlowKind};
use augmented_queue::workloads::{add_flows, ensure_transport_hosts, goodput_gbps, long_flows};

const LINK_GBPS: u64 = 10;
const PQ_LIMIT: u64 = 200_000;

fn algorithms() -> [CcAlgo; 3] {
    [
        CcAlgo::Dctcp,
        CcAlgo::Cubic,
        CcAlgo::Swift {
            target: Duration::from_micros(50),
        },
    ]
}

fn run(use_aq: bool, rep: &mut RunReport) -> Vec<(String, f64)> {
    let d = dumbbell(
        3,
        Rate::from_gbps(LINK_GBPS),
        Duration::from_micros(10),
        FifoConfig {
            limit_bytes: PQ_LIMIT,
            // The operator configures a PQ marking threshold only when
            // DCTCP must get its signal from the physical queue.
            ecn_threshold_bytes: (!use_aq).then_some(65_000),
        },
    );
    let mut net = d.net;
    let mut tags = vec![AqTag::NONE; 3];
    if use_aq {
        let mut ctl = AqController::new(
            Rate::from_gbps(LINK_GBPS),
            LimitPolicy::MatchPhysicalQueue {
                pq_limit_bytes: PQ_LIMIT,
            },
        );
        for (i, cc) in algorithms().iter().enumerate() {
            let policy = match cc {
                CcAlgo::Dctcp => CcPolicy::EcnBased {
                    threshold_bytes: 30_000,
                },
                CcAlgo::Swift { .. } => CcPolicy::DelayBased,
                _ => CcPolicy::DropBased,
            };
            let g = ctl
                .request(AqRequest {
                    demand: BandwidthDemand::Weighted(1),
                    cc: policy,
                    position: Position::Ingress,
                    limit_override: None,
                })
                .expect("weighted grants admit");
            tags[i] = g.id;
        }
        let mut pipe = AqPipeline::new();
        ctl.deploy_all(&mut pipe);
        net.add_pipeline(d.sw_left, Box::new(pipe));
    }
    ensure_transport_hosts(&mut net);
    for (i, cc) in algorithms().iter().enumerate() {
        let delay_signal = if use_aq && cc.delay_based() {
            DelaySignal::VirtualDelay
        } else {
            DelaySignal::MeasuredRtt
        };
        add_flows(
            &mut net,
            long_flows(
                EntityId(i as u32 + 1),
                &[(d.left[i], d.right[i])],
                5,
                FlowKind::Tcp(*cc),
                tags[i],
                AqTag::NONE,
                delay_signal,
                (i as u32 + 1) * 100,
            ),
        );
    }
    let mut sim = Simulator::new(net);
    sim.run_until(Time::from_millis(500));
    let out = algorithms()
        .iter()
        .enumerate()
        .map(|(i, cc)| {
            (
                cc.name().to_string(),
                goodput_gbps(
                    &sim.stats,
                    EntityId(i as u32 + 1),
                    Time::from_millis(150),
                    Time::from_millis(500),
                ),
            )
        })
        .collect();
    rep.capture(if use_aq { "aq" } else { "pq" }, &mut sim);
    out
}

fn main() {
    println!("three entities (5 flows each) share a {LINK_GBPS} Gbps bottleneck\n");
    let mut rep = RunReport::new("example_cc_coexistence");
    println!("shared physical queue (ECN threshold 65 KB):");
    for (name, g) in run(false, &mut rep) {
        println!("  {name:<8} {g:5.2} Gbps");
    }
    println!("\nper-entity AQs, equal weights (loss / virtual-ECN / virtual-delay feedback):");
    for (name, g) in run(true, &mut rep) {
        println!("  {name:<8} {g:5.2} Gbps");
    }
    println!("\nwith AQ each algorithm keeps its own control law but the shares equalize.");
    rep.write().expect("write run report");
}
