//! Tenant isolation: a UDP bully versus TCP tenants.
//!
//! ```text
//! cargo run --release --example tenant_isolation
//! ```
//!
//! Three tenants share a 10 Gbps core: tenant 1 blasts unreactive UDP at
//! line rate; tenants 2 and 3 run well-behaved CUBIC. Through a shared
//! physical queue the bully takes nearly everything. With one
//! equal-weight AQ per tenant the switch holds every tenant — including
//! the bully — to its third of the link, with no cooperation needed from
//! the bully's end host.

use aq_bench::report::RunReport;
use augmented_queue::core::{
    AqController, AqPipeline, AqRequest, BandwidthDemand, CcPolicy, LimitPolicy, Position,
};
use augmented_queue::netsim::packet::AqTag;
use augmented_queue::netsim::queue::FifoConfig;
use augmented_queue::netsim::time::{Duration, Rate, Time};
use augmented_queue::netsim::topology::dumbbell;
use augmented_queue::netsim::{EntityId, Simulator};
use augmented_queue::transport::{CcAlgo, DelaySignal, FlowKind};
use augmented_queue::workloads::{add_flows, ensure_transport_hosts, goodput_gbps, long_flows};

fn run(use_aq: bool, rep: &mut RunReport) -> Vec<f64> {
    let d = dumbbell(
        3,
        Rate::from_gbps(10),
        Duration::from_micros(10),
        FifoConfig {
            limit_bytes: 200_000,
            ecn_threshold_bytes: None,
        },
    );
    let mut net = d.net;
    let mut tags = vec![AqTag::NONE; 3];
    if use_aq {
        let mut ctl = AqController::new(
            Rate::from_gbps(10),
            LimitPolicy::MatchPhysicalQueue {
                pq_limit_bytes: 200_000,
            },
        );
        for tag in tags.iter_mut() {
            *tag = ctl
                .request(AqRequest {
                    demand: BandwidthDemand::Weighted(1),
                    cc: CcPolicy::DropBased,
                    position: Position::Ingress,
                    limit_override: None,
                })
                .expect("weighted grants admit")
                .id;
        }
        let mut pipe = AqPipeline::new();
        ctl.deploy_all(&mut pipe);
        net.add_pipeline(d.sw_left, Box::new(pipe));
    }
    ensure_transport_hosts(&mut net);
    // Tenant 1: the bully.
    add_flows(
        &mut net,
        long_flows(
            EntityId(1),
            &[(d.left[0], d.right[0])],
            1,
            FlowKind::Udp {
                rate: Rate::from_gbps(10),
            },
            tags[0],
            AqTag::NONE,
            DelaySignal::MeasuredRtt,
            1,
        ),
    );
    // Tenants 2 and 3: CUBIC.
    for t in 1..3u32 {
        add_flows(
            &mut net,
            long_flows(
                EntityId(t + 1),
                &[(d.left[t as usize], d.right[t as usize])],
                4,
                FlowKind::Tcp(CcAlgo::Cubic),
                tags[t as usize],
                AqTag::NONE,
                DelaySignal::MeasuredRtt,
                (t + 1) * 100,
            ),
        );
    }
    let mut sim = Simulator::new(net);
    sim.run_until(Time::from_millis(400));
    let out = (1..=3)
        .map(|e| {
            goodput_gbps(
                &sim.stats,
                EntityId(e),
                Time::from_millis(100),
                Time::from_millis(400),
            )
        })
        .collect();
    rep.capture(if use_aq { "aq" } else { "pq" }, &mut sim);
    out
}

fn main() {
    println!("tenant 1: UDP at line rate; tenants 2-3: 4 CUBIC flows each; 10 Gbps core\n");
    let mut rep = RunReport::new("example_tenant_isolation");
    let pq = run(false, &mut rep);
    println!(
        "shared physical queue:  bully {:.2}  tcp-2 {:.2}  tcp-3 {:.2}  (Gbps)",
        pq[0], pq[1], pq[2]
    );
    let aq = run(true, &mut rep);
    println!(
        "equal-weight AQs:       bully {:.2}  tcp-2 {:.2}  tcp-3 {:.2}  (Gbps)",
        aq[0], aq[1], aq[2]
    );
    println!("\nthe AQ pins the bully to its third; the excess is dropped in the switch");
    println!("before it can occupy the shared buffer.");
    assert!(pq[0] > 4.0 * pq[1].max(pq[2]), "PQ: bully should dominate");
    assert!(
        aq[0] < 2.0 * aq[1].min(aq[2]),
        "AQ: shares should be comparable"
    );
    rep.write().expect("write run report");
}
