//! Quickstart: two entities share a 10 Gbps bottleneck with equal-weight
//! Augmented Queues.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full API surface once: build a topology, ask the controller
//! for weighted AQ grants, deploy the AQ pipeline on the switch, tag each
//! entity's flows with its AQ id, simulate, and read per-entity goodput.

use aq_bench::report::RunReport;
use augmented_queue::core::{
    AqController, AqPipeline, AqRequest, BandwidthDemand, CcPolicy, LimitPolicy, Position,
};
use augmented_queue::netsim::packet::AqTag;
use augmented_queue::netsim::queue::FifoConfig;
use augmented_queue::netsim::time::{Duration, Rate, Time};
use augmented_queue::netsim::topology::dumbbell;
use augmented_queue::netsim::{EntityId, Simulator};
use augmented_queue::transport::{CcAlgo, DelaySignal, FlowKind};
use augmented_queue::workloads::{add_flows, ensure_transport_hosts, goodput_gbps, long_flows};

fn main() {
    // 1. Topology: a two-pair dumbbell; the core link is the bottleneck.
    let link = Rate::from_gbps(10);
    let d = dumbbell(
        2,
        link,
        Duration::from_micros(10),
        FifoConfig {
            limit_bytes: 200_000,
            ecn_threshold_bytes: None,
        },
    );
    let mut net = d.net;

    // 2. Control plane: the operator runs one controller per contended
    //    link; each tenant requests a weighted share.
    let mut controller = AqController::new(
        link,
        LimitPolicy::MatchPhysicalQueue {
            pq_limit_bytes: 200_000,
        },
    );
    let request = |cc| AqRequest {
        demand: BandwidthDemand::Weighted(1),
        cc,
        position: Position::Ingress,
        limit_override: None,
    };
    let tenant_a = controller.request(request(CcPolicy::DropBased)).unwrap();
    let tenant_b = controller.request(request(CcPolicy::DropBased)).unwrap();
    println!(
        "granted: tenant A -> {:?} at {}, tenant B -> {:?} at {}",
        tenant_a.id,
        controller.rate_of(tenant_a.id).unwrap(),
        tenant_b.id,
        controller.rate_of(tenant_b.id).unwrap(),
    );

    // 3. Data plane: deploy every granted AQ into a pipeline on the
    //    bottleneck switch.
    let mut pipeline = AqPipeline::new();
    controller.deploy_all(&mut pipeline);
    net.add_pipeline(d.sw_left, Box::new(pipeline));

    // 4. Traffic: tenant A runs one CUBIC flow; tenant B runs eight. The
    //    hypervisor tags each tenant's packets with its AQ id.
    ensure_transport_hosts(&mut net);
    add_flows(
        &mut net,
        long_flows(
            EntityId(1),
            &[(d.left[0], d.right[0])],
            1,
            FlowKind::Tcp(CcAlgo::Cubic),
            tenant_a.id,
            AqTag::NONE,
            DelaySignal::MeasuredRtt,
            1,
        ),
    );
    add_flows(
        &mut net,
        long_flows(
            EntityId(2),
            &[(d.left[1], d.right[1])],
            8,
            FlowKind::Tcp(CcAlgo::Cubic),
            tenant_b.id,
            AqTag::NONE,
            DelaySignal::MeasuredRtt,
            100,
        ),
    );

    // 5. Simulate and measure.
    let mut sim = Simulator::new(net);
    sim.run_until(Time::from_millis(300));
    let a = goodput_gbps(
        &sim.stats,
        EntityId(1),
        Time::from_millis(100),
        Time::from_millis(300),
    );
    let b = goodput_gbps(
        &sim.stats,
        EntityId(2),
        Time::from_millis(100),
        Time::from_millis(300),
    );
    println!("tenant A (1 flow):  {a:.2} Gbps");
    println!("tenant B (8 flows): {b:.2} Gbps");
    println!("despite the 1-vs-8 flow count, equal weights give each ~half the link.");
    assert!((a / b).max(b / a) < 1.5, "shares should be near-equal");

    // 6. Export the structured run report (per-entity, per-port, per-AQ).
    let mut rep = RunReport::new("example_quickstart");
    rep.capture("quickstart", &mut sim);
    rep.write().expect("write run report");
}
