//! Bi-directional VM bandwidth guarantees — the paper's Fig. 2 scenario.
//!
//! ```text
//! cargo run --release --example vm_hose_guarantee
//! ```
//!
//! Four VMs hang off one 25 Gbps switch. VM A buys a 5 Gbps outbound /
//! 5 Gbps inbound profile. Three remote VMs all blast CUBIC traffic at A
//! while A itself sends to all three. An ingress-position AQ enforces A's
//! outbound profile and an egress-position AQ on A's downlink enforces the
//! inbound one — something neither physical queues (no signal below line
//! rate) nor sender-side rate limiters (3 × 5 Gbps converge on A) can do.

use aq_bench::report::RunReport;
use augmented_queue::core::{
    AqController, AqPipeline, AqRequest, BandwidthDemand, CcPolicy, LimitPolicy, Position,
};
use augmented_queue::netsim::packet::AqTag;
use augmented_queue::netsim::queue::FifoConfig;
use augmented_queue::netsim::time::{Duration, Rate, Time};
use augmented_queue::netsim::topology::star;
use augmented_queue::netsim::{EntityId, Simulator};
use augmented_queue::transport::{CcAlgo, DelaySignal, FlowKind};
use augmented_queue::workloads::{add_flows, ensure_transport_hosts, goodput_gbps, long_flows};

const A_OUT: EntityId = EntityId(1);
const A_IN: EntityId = EntityId(2);

fn run(with_aq: bool, rep: &mut RunReport) -> (f64, f64) {
    let s = star(
        4,
        Rate::from_gbps(25),
        Duration::from_micros(5),
        FifoConfig {
            limit_bytes: 400_000,
            ecn_threshold_bytes: None,
        },
    );
    let mut net = s.net;
    let a = s.hosts[0];
    let (mut out_tag, mut in_tag) = (AqTag::NONE, AqTag::NONE);
    if with_aq {
        let mut ctl = AqController::new(
            Rate::from_gbps(25),
            LimitPolicy::MatchPhysicalQueue {
                pq_limit_bytes: 400_000,
            },
        );
        let profile = |position| AqRequest {
            demand: BandwidthDemand::Absolute(Rate::from_gbps(5)),
            cc: CcPolicy::DropBased,
            position,
            limit_override: None,
        };
        out_tag = ctl.request(profile(Position::Ingress)).expect("admit").id;
        in_tag = ctl.request(profile(Position::Egress)).expect("admit").id;
        let mut pipe = AqPipeline::new();
        ctl.deploy_all(&mut pipe);
        net.add_pipeline(s.switch, Box::new(pipe));
    }
    ensure_transport_hosts(&mut net);
    let mut base = 1u32;
    for peer in &s.hosts[1..4] {
        // A -> peer, tagged with A's outbound AQ.
        add_flows(
            &mut net,
            long_flows(
                A_OUT,
                &[(a, *peer)],
                6,
                FlowKind::Tcp(CcAlgo::Cubic),
                out_tag,
                AqTag::NONE,
                DelaySignal::MeasuredRtt,
                base,
            ),
        );
        base += 6;
        // peer -> A, tagged with A's inbound AQ.
        add_flows(
            &mut net,
            long_flows(
                A_IN,
                &[(*peer, a)],
                6,
                FlowKind::Tcp(CcAlgo::Cubic),
                AqTag::NONE,
                in_tag,
                DelaySignal::MeasuredRtt,
                base,
            ),
        );
        base += 6;
    }
    let mut sim = Simulator::new(net);
    sim.run_until(Time::from_millis(400));
    let out = (
        goodput_gbps(
            &sim.stats,
            A_OUT,
            Time::from_millis(100),
            Time::from_millis(400),
        ),
        goodput_gbps(
            &sim.stats,
            A_IN,
            Time::from_millis(100),
            Time::from_millis(400),
        ),
    );
    rep.capture(if with_aq { "aq" } else { "pq" }, &mut sim);
    out
}

fn main() {
    println!("VM A profile: 5 Gbps outbound / 5 Gbps inbound on a 25 Gbps star\n");
    let mut rep = RunReport::new("example_vm_hose_guarantee");
    let (out_pq, in_pq) = run(false, &mut rep);
    println!("physical queues only:  outbound {out_pq:5.2} Gbps   inbound {in_pq:5.2} Gbps");
    let (out_aq, in_aq) = run(true, &mut rep);
    println!("with bi-directional AQ: outbound {out_aq:5.2} Gbps   inbound {in_aq:5.2} Gbps");
    println!("\nthe AQ pair pins both directions at the profile (~4.7 Gbps payload of 5 Gbps");
    println!("wire) even though the physical queue never sees congestion at 5 of 25 Gbps.");
    rep.write().expect("write run report");
}
