//! Scalability: one million concurrent AQs in a single switch table.
//!
//! ```text
//! cargo run --release --example scalability
//! ```
//!
//! The paper's R3 requirement: the abstraction must scale to far more
//! entities than there are physical queues. This example deploys one
//! million AQs, streams packets across a rotating subset of them, and
//! reports the per-packet processing cost and the register memory the
//! table would occupy on a switch (15 bytes per AQ).

use aq_bench::report::RunReport;
use augmented_queue::core::{AqConfig, AqPipeline, AqTable, AqVerdict, CcPolicy};
use augmented_queue::netsim::packet::{AqTag, Packet};
use augmented_queue::netsim::time::{Rate, Time};
use augmented_queue::netsim::{EntityId, FlowId, NodeId};
use std::time::Instant;

const N_AQS: u32 = 1_000_000;
const PACKETS: u64 = 2_000_000;

fn main() {
    // Deploy a million AQs with a spread of allocated rates.
    let start = Instant::now(); // aq-lint: allow(no-wall-clock)
    let mut table = AqTable::new();
    for i in 1..=N_AQS {
        table.deploy(AqConfig {
            id: AqTag(i),
            rate: Rate::from_mbps(100 + (i as u64 % 1000) * 10),
            limit_bytes: 200_000,
            cc: if i % 3 == 0 {
                CcPolicy::EcnBased {
                    threshold_bytes: 65_000,
                }
            } else if i % 3 == 1 {
                CcPolicy::DropBased
            } else {
                CcPolicy::DelayBased
            },
        });
    }
    println!(
        "deployed {} AQs in {:.2?} ({} MB of switch register memory)",
        table.len(),
        start.elapsed(),
        table.register_memory_bytes() / 1_000_000
    );

    // Stream packets through a rotating subset, as a switch would.
    let mut pkt = Packet::data(
        FlowId(1),
        EntityId(1),
        NodeId(0),
        NodeId(1),
        0,
        1000,
        false,
        Time::ZERO,
    );
    pkt.ecn = augmented_queue::netsim::packet::Ecn::Capable;
    let start = Instant::now(); // aq-lint: allow(no-wall-clock)
    let mut t = 0u64;
    let mut dropped = 0u64;
    for i in 0..PACKETS {
        t += 50;
        let id = AqTag((i % N_AQS as u64) as u32 + 1);
        pkt.vdelay_ns = 0;
        if table.process(id, Time::from_nanos(t), &mut pkt) == Some(AqVerdict::Drop) {
            dropped += 1;
        }
    }
    let elapsed = start.elapsed();
    let rate = PACKETS as f64 / elapsed.as_secs_f64();
    println!(
        "processed {PACKETS} packets against the million-AQ table in {elapsed:.2?} \
         ({:.1} M packets/s, {dropped} limit drops)",
        rate / 1e6
    );

    // The full pipeline wrapper adds the tag-match path.
    let mut pipe = AqPipeline::new();
    for i in 1..=N_AQS {
        pipe.deploy_ingress(AqConfig {
            id: AqTag(i),
            rate: Rate::from_gbps(1),
            limit_bytes: 200_000,
            cc: CcPolicy::DropBased,
        });
    }
    use augmented_queue::netsim::SwitchPipeline;
    let start = Instant::now(); // aq-lint: allow(no-wall-clock)
    for i in 0..PACKETS {
        pkt.aq_ingress = AqTag((i % N_AQS as u64) as u32 + 1);
        t += 50;
        let _ = pipe.ingress(Time::from_nanos(t), &mut pkt);
    }
    let elapsed = start.elapsed();
    println!(
        "full ingress-pipeline path: {:.1} M packets/s",
        PACKETS as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!("\nmillions of traffic constituents fit in one table — no physical queues needed.");

    // Structured run report. Only simulation-determined values go in (the
    // wall-clock packet rates above vary run to run and would break the
    // byte-identical artifact guarantee).
    let mut rep = RunReport::new("example_scalability");
    rep.capture_metrics(
        "million_aq_table",
        &[
            ("aqs_deployed", table.len() as f64),
            (
                "register_memory_bytes",
                table.register_memory_bytes() as f64,
            ),
            ("packets_processed", PACKETS as f64),
            ("limit_drops", dropped as f64),
        ],
    );
    rep.write().expect("write run report");
}
